package core

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecodeSnapshot drives the checkpoint decoder with arbitrary bytes:
// recovery reads whatever the crash left at the checkpoint path, so the
// decoder must reject garbage with an error — never panic — and anything it
// accepts must survive an encode/decode round trip unchanged (the next
// checkpoint rewrites the same state).
func FuzzDecodeSnapshot(f *testing.F) {
	valid := snapshotFile{
		Version:    snapshotVersion,
		NextQuery:  3,
		NextStream: 2,
		WALSeq:     17,
		Queries: []snapshotEntry{{
			ID: 1,
			Graph: snapshotGraph{
				Vertices: []snapshotVertex{{ID: 1, Label: 10}, {ID: 2, Label: 20}},
				Edges:    []snapshotEdge{{U: 1, V: 2, Label: 5}},
			},
		}},
		Streams: []snapshotEntry{{
			ID:    1,
			Graph: snapshotGraph{Vertices: []snapshotVertex{{ID: 4, Label: 7}}},
		}},
	}
	var buf bytes.Buffer
	if err := writeSnapshotTo(&buf, valid); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("{}"))
	f.Add([]byte(`{"version":1,"queries":[{"id":-1}]}`))
	f.Add([]byte("{\"version\":"))
	f.Add([]byte{0x00, 0xff, 0x7b})

	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := readSnapshotFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := writeSnapshotTo(&out, file); err != nil {
			t.Fatalf("accepted snapshot does not re-encode: %v", err)
		}
		again, err := readSnapshotFrom(&out)
		if err != nil {
			t.Fatalf("re-encoded snapshot does not decode: %v", err)
		}
		if !reflect.DeepEqual(file, again) {
			t.Fatalf("snapshot round trip diverged:\n%#v\nvs\n%#v", file, again)
		}
		// Graph sections that decode must decode again identically; invalid
		// sections (duplicate vertices, dangling edges) must error, not panic.
		for _, entry := range append(append([]snapshotEntry{}, file.Queries...), file.Streams...) {
			g, err := decodeGraph(entry.Graph)
			if err != nil {
				continue
			}
			h, err := decodeGraph(entry.Graph)
			if err != nil || !g.Equal(h) {
				t.Fatalf("graph section decode is not deterministic: %v", err)
			}
		}
	})
}
