package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"nntstream/internal/graph"
)

func TestSnapshotRoundTrip(t *testing.T) {
	m := NewMonitor(&passthrough{})
	q1 := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1}, [][3]int{{0, 1, 0}})
	q2 := buildGraph(t, map[graph.VertexID]graph.Label{0: 2, 1: 3}, [][3]int{{0, 1, 5}})
	if _, err := m.AddQuery(q1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddQuery(q2); err != nil {
		t.Fatal(err)
	}
	g := buildGraph(t, map[graph.VertexID]graph.Label{5: 0, 6: 1, 7: 2},
		[][3]int{{5, 6, 0}, {6, 7, 1}})
	sid, err := m.AddStream(g)
	if err != nil {
		t.Fatal(err)
	}
	// Advance the stream so the canonical graph differs from g0.
	if _, err := m.Step(sid, graph.ChangeSet{graph.DeleteOp(6, 7)}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreMonitor(bytes.NewReader(buf.Bytes()), &passthrough{})
	if err != nil {
		t.Fatal(err)
	}
	if restored.QueryCount() != 2 || restored.StreamCount() != 1 {
		t.Fatalf("restored counts: %d queries, %d streams", restored.QueryCount(), restored.StreamCount())
	}
	if !restored.StreamGraph(sid).Equal(m.StreamGraph(sid)) {
		t.Fatal("restored stream graph differs")
	}
	if !restored.Query(0).Equal(q1) || !restored.Query(1).Equal(q2) {
		t.Fatal("restored queries differ")
	}
	// Candidate sets of the rebuilt filter match.
	if !reflect.DeepEqual(m.Candidates(), restored.Candidates()) {
		t.Fatal("restored candidates differ")
	}
	// Restored monitor keeps streaming from where it left off.
	if _, err := restored.Step(sid, graph.ChangeSet{graph.InsertOp(5, 0, 9, 1, 0)}); err != nil {
		t.Fatal(err)
	}
	// ID allocation resumes past the restored IDs.
	q3 := buildGraph(t, map[graph.VertexID]graph.Label{0: 0}, nil)
	_ = q3
	sid2, err := restored.AddStream(g)
	if err != nil {
		t.Fatal(err)
	}
	if sid2 != sid+1 {
		t.Fatalf("restored stream id allocation: got %d; want %d", sid2, sid+1)
	}
}

func TestSnapshotPreservesIDGaps(t *testing.T) {
	// Removed queries leave ID gaps that must survive a snapshot cycle so
	// external references stay valid.
	m := NewMonitor(&dynamicPassthrough{})
	q := buildGraph(t, map[graph.VertexID]graph.Label{0: 0}, nil)
	id0, _ := m.AddQuery(q)
	id1, _ := m.AddQuery(q)
	id2, _ := m.AddQuery(q)
	if err := m.RemoveQuery(id1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreMonitor(&buf, &dynamicPassthrough{})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Query(id0) == nil || restored.Query(id2) == nil {
		t.Fatal("surviving queries missing")
	}
	if restored.Query(id1) != nil {
		t.Fatal("removed query resurrected")
	}
	// New IDs continue after the highest restored ID.
	id3, err := restored.AddQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if id3 != id2+1 {
		t.Fatalf("id allocation after restore: got %d; want %d", id3, id2+1)
	}
}

func TestRestoreRejectsBadSnapshots(t *testing.T) {
	cases := []string{
		"not json",
		`{"version": 99}`,
		`{"version": 1, "queries": [{"id": 0, "graph": {"edges": [{"u":0,"v":1}]}}]}`, // edge without vertices
		`{"version": 1, "queries": [{"id": 0, "graph": {}}, {"id": 0, "graph": {}}]}`, // duplicate id
	}
	for i, c := range cases {
		if _, err := RestoreMonitor(strings.NewReader(c), &passthrough{}); err == nil {
			t.Fatalf("case %d: bad snapshot accepted", i)
		}
	}
}

// dynamicPassthrough extends passthrough with query removal.
type dynamicPassthrough struct {
	passthrough
	removed map[QueryID]bool
}

func (d *dynamicPassthrough) RemoveQuery(id QueryID) error {
	if d.removed == nil {
		d.removed = make(map[QueryID]bool)
	}
	d.removed[id] = true
	for i, q := range d.queries {
		if q == id {
			d.queries = append(d.queries[:i], d.queries[i+1:]...)
			break
		}
	}
	return nil
}
