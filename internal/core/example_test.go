package core_test

import (
	"fmt"

	"nntstream/internal/core"
	"nntstream/internal/graph"
	"nntstream/internal/join"
)

// ExampleMonitor runs the full continuous-search loop: register a pattern,
// register a stream, apply change operations, read candidates.
func ExampleMonitor() {
	// Pattern: an A—B edge.
	q := graph.New()
	_ = q.AddVertex(0, 0)
	_ = q.AddVertex(1, 1)
	_ = q.AddEdge(0, 1, 0)

	// Stream starts as an A—C edge: no match.
	g0 := graph.New()
	_ = g0.AddVertex(10, 0)
	_ = g0.AddVertex(11, 2)
	_ = g0.AddEdge(10, 11, 0)

	mon := core.NewMonitor(join.NewDSC(join.DefaultDepth))
	qid, _ := mon.AddQuery(q)
	sid, _ := mon.AddStream(g0)

	fmt.Println("t=0:", mon.Candidates())

	// t=1: a B vertex attaches to the A vertex — the pattern appears.
	pairs, _ := mon.Step(sid, graph.ChangeSet{graph.InsertOp(10, 0, 12, 1, 0)})
	fmt.Println("t=1:", pairs)

	// t=2: it detaches again.
	pairs, _ = mon.Step(sid, graph.ChangeSet{graph.DeleteOp(10, 12)})
	fmt.Println("t=2:", pairs)
	_ = qid
	// Output:
	// t=0: []
	// t=1: [(G0,Q0)]
	// t=2: []
}
