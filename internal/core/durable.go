package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"nntstream/internal/graph"
	"nntstream/internal/wal"
)

// DurableEngine makes a Monitor or ShardedMonitor crash-safe: every accepted
// mutation is appended to a write-ahead log before it is applied, and the
// engine's logical state is periodically folded into an atomic checkpoint
// that lets the log be truncated. Booting from a data directory restores the
// checkpoint (if any) and replays the log's surviving suffix, so a process
// killed at any instant recovers to exactly the acknowledged operations.
//
// Ordering guarantees come from two layers: the WAL assigns strictly
// increasing LSNs, and the checkpoint records the LSN it has folded in, so
// replay skips records the checkpoint already covers — including the crash
// window between checkpoint publication and log truncation, where the old
// records still exist on disk but must not be applied twice.
//
// Append-before-apply has one wrinkle: an operation the inner engine rejects
// (a sealed engine, a duplicate, an invalid change set) has already been
// logged. The engine withdraws it by rolling the log back to the boundary
// captured before the append; the single-writer discipline (all mutations
// serialize behind mu) makes that rollback safe.
type DurableEngine struct {
	mu     sync.Mutex
	inner  innerEngine
	log    *wal.Log
	dir    string
	cpPath string

	metrics *wal.Metrics
	closed  bool

	stopCheckpoint chan struct{}
	checkpointWG   sync.WaitGroup
}

// innerEngine is the engine surface DurableEngine wraps. Monitor and
// ShardedMonitor implement it.
type innerEngine interface {
	AddQuery(q *graph.Graph) (QueryID, error)
	RemoveQuery(id QueryID) error
	AddStream(g0 *graph.Graph) (StreamID, error)
	StepAll(changes map[StreamID]graph.ChangeSet) ([]Pair, error)
	Candidates() []Pair
	Stats() Stats
	QueryCount() int
	StreamCount() int
	SetMetrics(em *EngineMetrics)

	replayAddQuery(id QueryID, q *graph.Graph) error
	replayAddStream(id StreamID, g0 *graph.Graph) error
	nextIDs() (QueryID, StreamID)
	setNextIDs(q QueryID, s StreamID)
	checkpointState() engineState
}

// DurableOptions configures OpenDurableEngine.
type DurableOptions struct {
	// Shards selects the inner engine: <=1 wraps a single Monitor, >1 a
	// ShardedMonitor with that many shards.
	Shards int
	// Workers bounds the evaluation worker pool handed to ParallelFilters:
	// per shard for the sharded engine (0 = max(1, GOMAXPROCS/shards)),
	// for the whole filter in single-monitor mode (0 = GOMAXPROCS).
	Workers int
	// Fsync is the WAL fsync policy (default wal.SyncAlways).
	Fsync wal.SyncPolicy
	// FsyncInterval is the cadence for wal.SyncInterval (default
	// wal.DefaultSyncInterval).
	FsyncInterval time.Duration
	// CheckpointInterval is the background checkpoint cadence; zero disables
	// background checkpoints (Close still writes a final one).
	CheckpointInterval time.Duration
	// Metrics receives WAL and checkpoint observations; nil disables.
	Metrics *wal.Metrics
	// WrapFile wraps the WAL file — the fault-injection hook for tests.
	WrapFile func(wal.LogFile) wal.LogFile
}

const (
	walFileName        = "wal.log"
	checkpointFileName = "checkpoint.json"
)

// OpenDurableEngine boots a durable engine from dir, creating it on first
// use: restore the checkpoint if one exists, then replay WAL records beyond
// the checkpoint's LSN. The filter factory must produce deterministic
// filters (the same sequence of operations rebuilds the same state) — the
// same property snapshots already rely on.
func OpenDurableEngine(dir string, factory FilterFactory, opts DurableOptions) (*DurableEngine, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: creating data dir %s: %w", dir, err)
	}
	d := &DurableEngine{
		dir:     dir,
		cpPath:  filepath.Join(dir, checkpointFileName),
		metrics: opts.Metrics,
	}
	if opts.Shards > 1 {
		d.inner = NewShardedMonitorWith(factory, ShardedOptions{Shards: opts.Shards, Workers: opts.Workers})
	} else {
		f := factory()
		if pf, ok := f.(ParallelFilter); ok {
			pf.SetWorkers(opts.Workers)
		}
		d.inner = NewMonitor(f)
	}

	// A crash during checkpointing can leave a stale temp file; the rename
	// never happened, so it holds no authoritative state.
	os.Remove(d.cpPath + ".tmp")

	opts.Metrics.ObserveRecoveryStart()
	walSeq, err := d.restoreCheckpoint()
	if err != nil {
		return nil, err
	}
	log, err := wal.Open(filepath.Join(dir, walFileName), wal.Options{
		Sync:         opts.Fsync,
		SyncInterval: opts.FsyncInterval,
		Metrics:      opts.Metrics,
		WrapFile:     opts.WrapFile,
		OnRecord: func(r wal.Record) error {
			if r.LSN <= walSeq {
				// Already folded into the checkpoint: the process died
				// between publishing the checkpoint and truncating the log.
				return nil
			}
			return d.replayRecord(r)
		},
	})
	if err != nil {
		return nil, err
	}
	d.log = log
	if walSeq > log.LastLSN() {
		// The checkpoint is ahead of the (reset or torn) log; future LSNs
		// must stay above everything a checkpoint has ever recorded.
		// Re-checkpointing immediately restores the invariant by folding the
		// current LSN base into a fresh checkpoint.
		d.mu.Lock()
		err := d.checkpointLocked()
		d.mu.Unlock()
		if err != nil {
			log.Close()
			return nil, fmt.Errorf("core: rebasing checkpoint after log loss: %w", err)
		}
	}
	if opts.CheckpointInterval > 0 {
		d.stopCheckpoint = make(chan struct{})
		d.checkpointWG.Add(1)
		go d.checkpointLoop(opts.CheckpointInterval)
	}
	return d, nil
}

// restoreCheckpoint loads the checkpoint file if present and returns its
// WALSeq (zero when no checkpoint exists).
func (d *DurableEngine) restoreCheckpoint() (uint64, error) {
	f, err := os.Open(d.cpPath)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("core: opening checkpoint %s: %w", d.cpPath, err)
	}
	defer f.Close()
	file, err := readSnapshotFrom(f)
	if err != nil {
		return 0, fmt.Errorf("core: checkpoint %s: %w", d.cpPath, err)
	}
	if err := restoreInto(d.inner, file); err != nil {
		return 0, fmt.Errorf("core: restoring checkpoint %s: %w", d.cpPath, err)
	}
	return file.WALSeq, nil
}

// replayRecord applies one WAL record during recovery.
func (d *DurableEngine) replayRecord(r wal.Record) error {
	switch r.Kind {
	case wal.KindAddQuery:
		//lint:ignore walorder replay applies a record already present in the log; re-appending would duplicate it
		return d.inner.replayAddQuery(QueryID(r.ID), r.Graph)
	case wal.KindRemoveQuery:
		//lint:ignore walorder replay applies a record already present in the log; re-appending would duplicate it
		return d.inner.RemoveQuery(QueryID(r.ID))
	case wal.KindAddStream:
		//lint:ignore walorder replay applies a record already present in the log; re-appending would duplicate it
		return d.inner.replayAddStream(StreamID(r.ID), r.Graph)
	case wal.KindStepAll:
		changes := make(map[StreamID]graph.ChangeSet, len(r.Changes))
		for id, cs := range r.Changes {
			changes[StreamID(id)] = cs
		}
		//lint:ignore walorder replay applies a record already present in the log; re-appending would duplicate it
		_, err := d.inner.StepAll(changes)
		return err
	default:
		return fmt.Errorf("core: replaying unknown WAL record kind %d", r.Kind)
	}
}

// errClosed reports use after Close/Crash.
var errDurableClosed = fmt.Errorf("core: durable engine is closed")

// logged wraps a mutation in the append-before-apply protocol: the record is
// appended (and, under SyncAlways, made durable) first; if the inner engine
// then rejects the operation, the record is withdrawn by rolling the log
// back to the pre-append boundary.
func (d *DurableEngine) logged(r wal.Record, apply func() error) error {
	if d.closed {
		return errDurableClosed
	}
	off, lsn := d.log.Offset(), d.log.LastLSN()
	if _, err := d.log.Append(r); err != nil {
		return err
	}
	if err := apply(); err != nil {
		if terr := d.log.TruncateTo(off, lsn); terr != nil {
			return fmt.Errorf("%w (and withdrawing the WAL record failed: %v)", err, terr)
		}
		return err
	}
	return nil
}

// AddQuery logs and registers a query pattern.
func (d *DurableEngine) AddQuery(q *graph.Graph) (QueryID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	nextQ, _ := d.inner.nextIDs()
	var id QueryID
	err := d.logged(
		wal.Record{Kind: wal.KindAddQuery, ID: int64(nextQ), Graph: q},
		func() (e error) { id, e = d.inner.AddQuery(q); return },
	)
	if err != nil {
		return 0, err
	}
	return id, nil
}

// RemoveQuery logs and deregisters a pattern (DynamicFilter engines only).
func (d *DurableEngine) RemoveQuery(id QueryID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.logged(
		wal.Record{Kind: wal.KindRemoveQuery, ID: int64(id)},
		func() error { return d.inner.RemoveQuery(id) },
	)
}

// AddStream logs and registers a stream with starting graph g0.
func (d *DurableEngine) AddStream(g0 *graph.Graph) (StreamID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, nextS := d.inner.nextIDs()
	var id StreamID
	err := d.logged(
		wal.Record{Kind: wal.KindAddStream, ID: int64(nextS), Graph: g0},
		func() (e error) { id, e = d.inner.AddStream(g0); return },
	)
	if err != nil {
		return 0, err
	}
	return id, nil
}

// StepAll logs one global timestamp's change sets and applies them. The
// inner engines validate the whole batch before any filter state changes, so
// a rejected batch is withdrawn from the log and leaves no trace.
func (d *DurableEngine) StepAll(changes map[StreamID]graph.ChangeSet) ([]Pair, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	rec := wal.Record{Kind: wal.KindStepAll, Changes: make(map[int64]graph.ChangeSet, len(changes))}
	for id, cs := range changes {
		rec.Changes[int64(id)] = cs
	}
	var pairs []Pair
	err := d.logged(rec, func() (e error) { pairs, e = d.inner.StepAll(changes); return })
	if err != nil {
		return nil, err
	}
	return pairs, nil
}

// Checkpoint folds the current state into the checkpoint file atomically and
// truncates the WAL. Safe to call at any time; concurrent mutations wait.
func (d *DurableEngine) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errDurableClosed
	}
	return d.checkpointLocked()
}

// checkpointLocked serializes the engine state to <dir>/checkpoint.json via
// a temp file + fsync + rename, then empties the log. A crash before the
// rename keeps the old checkpoint and the full log; a crash between rename
// and reset keeps both the new checkpoint and the stale records, which
// replay then skips by LSN.
func (d *DurableEngine) checkpointLocked() error {
	start := time.Now()
	file := buildSnapshotFile(d.inner.checkpointState(), d.log.LastLSN())
	err := wal.WriteFileAtomic(d.cpPath, func(w io.Writer) error {
		return writeSnapshotTo(w, file)
	})
	if err == nil {
		err = d.log.Reset()
	}
	d.metrics.ObserveCheckpoint(time.Since(start), err)
	return err
}

func (d *DurableEngine) checkpointLoop(interval time.Duration) {
	defer d.checkpointWG.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-d.stopCheckpoint:
			return
		case <-ticker.C:
			d.mu.Lock()
			if !d.closed {
				_ = d.checkpointLocked() // failure is observed in metrics; next tick retries
			}
			d.mu.Unlock()
		}
	}
}

// Close writes a final checkpoint and releases the log. The engine refuses
// further mutations afterwards.
func (d *DurableEngine) Close() error {
	d.stopLoop()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	cpErr := d.checkpointLocked()
	closeErr := d.log.Close()
	if cpErr != nil {
		return cpErr
	}
	return closeErr
}

// Crash releases the engine without checkpointing or flushing — the test
// hook that simulates a hard kill. State on disk is whatever the WAL's fsync
// policy has made durable.
func (d *DurableEngine) Crash() error {
	d.stopLoop()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.log.Close()
}

func (d *DurableEngine) stopLoop() {
	d.mu.Lock()
	stop := d.stopCheckpoint
	d.stopCheckpoint = nil
	d.mu.Unlock()
	if stop != nil {
		close(stop)
		d.checkpointWG.Wait()
	}
}

// Read paths delegate to the inner engine; the server's readers-writer lock
// (and ShardedMonitor's internal lock) provide the read-side exclusion.

// Candidates returns the current candidate pairs.
func (d *DurableEngine) Candidates() []Pair { return d.inner.Candidates() }

// Stats returns accumulated statistics.
func (d *DurableEngine) Stats() Stats { return d.inner.Stats() }

// QueryCount and StreamCount report workload sizes.
func (d *DurableEngine) QueryCount() int  { return d.inner.QueryCount() }
func (d *DurableEngine) StreamCount() int { return d.inner.StreamCount() }

// SetMetrics forwards engine instrumentation to the wrapped engine.
func (d *DurableEngine) SetMetrics(em *EngineMetrics) { d.inner.SetMetrics(em) }

// CollectMetrics forwards the wrapped engine's collector surface.
func (d *DurableEngine) CollectMetrics(emit func(name string, value float64)) {
	if c, ok := d.inner.(interface {
		CollectMetrics(emit func(name string, value float64))
	}); ok {
		c.CollectMetrics(emit)
	}
}

// LastLSN exposes the WAL's most recent sequence number (for tests and
// operational introspection).
func (d *DurableEngine) LastLSN() uint64 { return d.log.LastLSN() }
