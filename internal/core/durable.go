package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"nntstream/internal/graph"
	"nntstream/internal/wal"
)

// DurableEngine makes a Monitor or ShardedMonitor crash-safe: every accepted
// mutation is appended to a write-ahead log before it is applied, and the
// engine's logical state is periodically folded into an atomic checkpoint
// that lets the log be truncated. Booting from a data directory restores the
// checkpoint (if any) and replays the log's surviving suffix, so a process
// killed at any instant recovers to exactly the acknowledged operations.
//
// Ordering guarantees come from two layers: the WAL assigns strictly
// increasing LSNs, and the checkpoint records the LSN it has folded in, so
// replay skips records the checkpoint already covers — including the crash
// window between checkpoint publication and log truncation, where the old
// records still exist on disk but must not be applied twice.
//
// Append-before-apply has one wrinkle: an operation the inner engine rejects
// (a sealed engine, a duplicate, an invalid change set) has already been
// logged. The engine withdraws it by rolling the log back to the boundary
// captured before the append; the single-writer discipline (all mutations
// serialize behind mu) makes that rollback safe.
type DurableEngine struct {
	mu     sync.Mutex
	inner  innerEngine
	log    *wal.Log
	dir    string
	cpPath string

	// applied is the LSN of the last record folded into the engine state —
	// max of the restored checkpoint's WALSeq and the log's last record. It
	// can run ahead of log.LastLSN() after a checkpoint-driven log reset, so
	// checkpoints stamp it (not the log's LSN) and replica gap detection
	// compares against it.
	applied uint64

	metrics  *wal.Metrics
	onCommit func(wal.Record)
	cpFault  *wal.AtomicFault
	closed   bool

	// bufferCommits redirects onCommit notifications into pendingCommits
	// while a StepAllBatch group commit is open: records are not durable
	// until the batch's closing fsync, so shipping them per step would let a
	// replica apply state the primary can still lose. StepAllBatch flushes
	// the buffer only after the fsync succeeds.
	bufferCommits  bool
	pendingCommits []wal.Record

	stopCheckpoint chan struct{}
	checkpointWG   sync.WaitGroup
}

// innerEngine is the engine surface DurableEngine wraps. Monitor and
// ShardedMonitor implement it.
type innerEngine interface {
	AddQuery(q *graph.Graph) (QueryID, error)
	RemoveQuery(id QueryID) error
	AddStream(g0 *graph.Graph) (StreamID, error)
	StepAll(changes map[StreamID]graph.ChangeSet) ([]Pair, error)
	Candidates() []Pair
	Stats() Stats
	QueryCount() int
	StreamCount() int
	SetMetrics(em *EngineMetrics)

	replayAddQuery(id QueryID, q *graph.Graph) error
	replayAddStream(id StreamID, g0 *graph.Graph) error
	nextIDs() (QueryID, StreamID)
	setNextIDs(q QueryID, s StreamID)
	checkpointState() engineState
}

// DurableOptions configures OpenDurableEngine.
type DurableOptions struct {
	// Shards selects the inner engine: <=1 wraps a single Monitor, >1 a
	// ShardedMonitor with that many shards.
	Shards int
	// Workers bounds the evaluation worker pool handed to ParallelFilters:
	// per shard for the sharded engine (0 = max(1, GOMAXPROCS/shards)),
	// for the whole filter in single-monitor mode (0 = GOMAXPROCS).
	Workers int
	// Fsync is the WAL fsync policy (default wal.SyncAlways).
	Fsync wal.SyncPolicy
	// FsyncInterval is the cadence for wal.SyncInterval (default
	// wal.DefaultSyncInterval).
	FsyncInterval time.Duration
	// CheckpointInterval is the background checkpoint cadence; zero disables
	// background checkpoints (Close still writes a final one).
	CheckpointInterval time.Duration
	// Metrics receives WAL and checkpoint observations; nil disables.
	Metrics *wal.Metrics
	// WrapFile wraps the WAL file — the fault-injection hook for tests.
	WrapFile func(wal.LogFile) wal.LogFile
	// CheckpointFault injects failures into the checkpoint's atomic file
	// replacement — the checkpoint-path fault-injection hook for tests.
	CheckpointFault *wal.AtomicFault
	// OnCommit, when non-nil, receives every successfully applied mutation as
	// its LSN-stamped WAL record, in commit order, under the engine's write
	// lock — the replication shipping hook. It is not invoked for records
	// replayed during recovery (they were committed by an earlier process) or
	// applied through ApplyRecord (they arrived from another primary).
	OnCommit func(wal.Record)
}

const (
	walFileName        = "wal.log"
	checkpointFileName = "checkpoint.json"
)

// OpenDurableEngine boots a durable engine from dir, creating it on first
// use: restore the checkpoint if one exists, then replay WAL records beyond
// the checkpoint's LSN. The filter factory must produce deterministic
// filters (the same sequence of operations rebuilds the same state) — the
// same property snapshots already rely on.
func OpenDurableEngine(dir string, factory FilterFactory, opts DurableOptions) (*DurableEngine, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: creating data dir %s: %w", dir, err)
	}
	d := &DurableEngine{
		dir:      dir,
		cpPath:   filepath.Join(dir, checkpointFileName),
		metrics:  opts.Metrics,
		onCommit: opts.OnCommit,
		cpFault:  opts.CheckpointFault,
	}
	if opts.Shards > 1 {
		d.inner = NewShardedMonitorWith(factory, ShardedOptions{Shards: opts.Shards, Workers: opts.Workers})
	} else {
		f := factory()
		if pf, ok := f.(ParallelFilter); ok {
			pf.SetWorkers(opts.Workers)
		}
		d.inner = NewMonitor(f)
	}

	// A crash during checkpointing can leave a stale temp file; the rename
	// never happened, so it holds no authoritative state.
	os.Remove(d.cpPath + ".tmp")

	opts.Metrics.ObserveRecoveryStart()
	walSeq, err := d.restoreCheckpoint()
	if err != nil {
		return nil, err
	}
	log, err := wal.Open(filepath.Join(dir, walFileName), wal.Options{
		Sync:         opts.Fsync,
		SyncInterval: opts.FsyncInterval,
		Metrics:      opts.Metrics,
		WrapFile:     opts.WrapFile,
		OnRecord: func(r wal.Record) error {
			if r.LSN <= walSeq {
				// Already folded into the checkpoint: the process died
				// between publishing the checkpoint and truncating the log.
				return nil
			}
			return d.replayRecord(r)
		},
	})
	if err != nil {
		return nil, err
	}
	d.log = log
	d.applied = log.LastLSN()
	if walSeq > d.applied {
		d.applied = walSeq
	}
	if walSeq > log.LastLSN() {
		// The checkpoint is ahead of the (reset or torn) log; future LSNs
		// must stay above everything a checkpoint has ever recorded, or the
		// next recovery would skip them. Any surviving records were already
		// folded into the checkpoint, so discard them and continue numbering
		// from the checkpoint's LSN.
		err := log.Reset()
		if err == nil {
			err = log.Rebase(walSeq)
		}
		if err != nil {
			log.Close()
			return nil, fmt.Errorf("core: rebasing log after checkpoint-ahead boot: %w", err)
		}
	}
	if opts.CheckpointInterval > 0 {
		d.stopCheckpoint = make(chan struct{})
		d.checkpointWG.Add(1)
		go d.checkpointLoop(opts.CheckpointInterval)
	}
	return d, nil
}

// restoreCheckpoint loads the checkpoint file if present and returns its
// WALSeq (zero when no checkpoint exists).
func (d *DurableEngine) restoreCheckpoint() (uint64, error) {
	f, err := os.Open(d.cpPath)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("core: opening checkpoint %s: %w", d.cpPath, err)
	}
	defer f.Close()
	file, err := readSnapshotFrom(f)
	if err != nil {
		return 0, fmt.Errorf("core: checkpoint %s: %w", d.cpPath, err)
	}
	if err := restoreInto(d.inner, file); err != nil {
		return 0, fmt.Errorf("core: restoring checkpoint %s: %w", d.cpPath, err)
	}
	return file.WALSeq, nil
}

// replayRecord applies one WAL record during recovery.
func (d *DurableEngine) replayRecord(r wal.Record) error {
	switch r.Kind {
	case wal.KindAddQuery:
		//lint:ignore walorder replay applies a record already present in the log; re-appending would duplicate it
		return d.inner.replayAddQuery(QueryID(r.ID), r.Graph)
	case wal.KindRemoveQuery:
		//lint:ignore walorder replay applies a record already present in the log; re-appending would duplicate it
		return d.inner.RemoveQuery(QueryID(r.ID))
	case wal.KindAddStream:
		//lint:ignore walorder replay applies a record already present in the log; re-appending would duplicate it
		return d.inner.replayAddStream(StreamID(r.ID), r.Graph)
	case wal.KindStepAll:
		changes := make(map[StreamID]graph.ChangeSet, len(r.Changes))
		for id, cs := range r.Changes {
			changes[StreamID(id)] = cs
		}
		//lint:ignore walorder replay applies a record already present in the log; re-appending would duplicate it
		_, err := d.inner.StepAll(changes)
		return err
	default:
		return fmt.Errorf("core: replaying unknown WAL record kind %d", r.Kind)
	}
}

// errClosed reports use after Close/Crash.
var errDurableClosed = fmt.Errorf("core: durable engine is closed")

// logged wraps a mutation in the append-before-apply protocol: the record is
// appended (and, under SyncAlways, made durable) first; if the inner engine
// then rejects the operation, the record is withdrawn by rolling the log
// back to the pre-append boundary.
func (d *DurableEngine) logged(r wal.Record, apply func() error) error {
	if d.closed {
		return errDurableClosed
	}
	off, lsn := d.log.Offset(), d.log.LastLSN()
	committed, err := d.log.Append(r)
	if err != nil {
		return err
	}
	if err := apply(); err != nil {
		if terr := d.log.TruncateTo(off, lsn); terr != nil {
			return fmt.Errorf("%w (and withdrawing the WAL record failed: %v)", err, terr)
		}
		return err
	}
	d.applied = committed
	if d.onCommit != nil {
		r.LSN = committed
		if d.bufferCommits {
			d.pendingCommits = append(d.pendingCommits, r)
		} else {
			d.onCommit(r)
		}
	}
	return nil
}

// AddQuery logs and registers a query pattern.
func (d *DurableEngine) AddQuery(q *graph.Graph) (QueryID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	nextQ, _ := d.inner.nextIDs()
	var id QueryID
	err := d.logged(
		wal.Record{Kind: wal.KindAddQuery, ID: int64(nextQ), Graph: q},
		func() (e error) { id, e = d.inner.AddQuery(q); return },
	)
	if err != nil {
		return 0, err
	}
	return id, nil
}

// RemoveQuery logs and deregisters a pattern (DynamicFilter engines only).
func (d *DurableEngine) RemoveQuery(id QueryID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.logged(
		wal.Record{Kind: wal.KindRemoveQuery, ID: int64(id)},
		func() error { return d.inner.RemoveQuery(id) },
	)
}

// AddStream logs and registers a stream with starting graph g0.
func (d *DurableEngine) AddStream(g0 *graph.Graph) (StreamID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, nextS := d.inner.nextIDs()
	var id StreamID
	err := d.logged(
		wal.Record{Kind: wal.KindAddStream, ID: int64(nextS), Graph: g0},
		func() (e error) { id, e = d.inner.AddStream(g0); return },
	)
	if err != nil {
		return 0, err
	}
	return id, nil
}

// StepAll logs one global timestamp's change sets and applies them. The
// inner engines validate the whole batch before any filter state changes, so
// a rejected batch is withdrawn from the log and leaves no trace.
func (d *DurableEngine) StepAll(changes map[StreamID]graph.ChangeSet) ([]Pair, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	rec := wal.Record{Kind: wal.KindStepAll, Changes: make(map[int64]graph.ChangeSet, len(changes))}
	for id, cs := range changes {
		rec.Changes[int64(id)] = cs
	}
	var pairs []Pair
	err := d.logged(rec, func() (e error) { pairs, e = d.inner.StepAll(changes); return })
	if err != nil {
		return nil, err
	}
	return pairs, nil
}

// StepAllBatch applies a sequence of timestamps under one durability
// barrier: every step is appended to the WAL and applied in order exactly as
// N sequential StepAll calls would (same records, same LSNs, bit-identical
// engine state), but under wal.SyncAlways the whole batch shares a single
// closing fsync instead of paying one per step — the group commit that makes
// the batched ingest path's throughput. The ack contract shifts accordingly:
// no step in the batch is durable until StepAllBatch returns, so callers
// must not acknowledge any of it earlier.
//
// Atomicity is per step, not per batch: each step validates fully before it
// touches filter state (the StepAll contract), and a step the inner engine
// rejects is withdrawn from the WAL; steps applied before the failure stay
// applied and durable. The returned counts say how far the batch got —
// applied steps and the total candidate pairs those steps reported.
//
// OnCommit notifications are buffered for the duration of the batch and
// delivered — in commit order, under the engine's write lock, exactly as
// StepAll would — only after the group commit's closing fsync succeeds:
// shipping a record to a replica before it is durable on the primary would
// invert the durable-before-ship ordering replication depends on. If the
// closing fsync fails, the error wraps wal.ErrSyncFailed, nothing is
// shipped, and callers must not acknowledge any step of the batch (the
// applied counts then describe in-memory state of unknown durability).
func (d *DurableEngine) StepAllBatch(batch []map[StreamID]graph.ChangeSet) (applied, pairs int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, 0, errDurableClosed
	}
	d.bufferCommits = true
	d.pendingCommits = d.pendingCommits[:0]
	err = d.log.GroupCommit(func() error {
		for _, changes := range batch {
			rec := wal.Record{Kind: wal.KindStepAll, Changes: make(map[int64]graph.ChangeSet, len(changes))}
			for id, cs := range changes {
				rec.Changes[int64(id)] = cs
			}
			var ps []Pair
			if err := d.logged(rec, func() (e error) { ps, e = d.inner.StepAll(changes); return }); err != nil {
				return err
			}
			applied++
			pairs += len(ps)
		}
		return nil
	})
	d.bufferCommits = false
	if d.onCommit != nil && !errors.Is(err, wal.ErrSyncFailed) {
		// The applied prefix (whole batch when err is nil) is durable: ship
		// it. A per-step rejection leaves earlier steps committed, so they
		// ship exactly as N sequential StepAll calls would have.
		for _, r := range d.pendingCommits {
			d.onCommit(r)
		}
	}
	d.pendingCommits = d.pendingCommits[:0]
	return applied, pairs, err
}

// Checkpoint folds the current state into the checkpoint file atomically and
// truncates the WAL. Safe to call at any time; concurrent mutations wait.
func (d *DurableEngine) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errDurableClosed
	}
	return d.checkpointLocked()
}

// checkpointLocked serializes the engine state to <dir>/checkpoint.json via
// a temp file + fsync + rename, then empties the log. A crash before the
// rename keeps the old checkpoint and the full log; a crash between rename
// and reset keeps both the new checkpoint and the stale records, which
// replay then skips by LSN.
func (d *DurableEngine) checkpointLocked() error {
	start := time.Now()
	file := buildSnapshotFile(d.inner.checkpointState(), d.applied)
	err := wal.WriteFileAtomicFault(d.cpPath, func(w io.Writer) error {
		return writeSnapshotTo(w, file)
	}, d.cpFault)
	if err == nil {
		err = d.log.Reset()
	}
	d.metrics.ObserveCheckpoint(time.Since(start), err)
	return err
}

func (d *DurableEngine) checkpointLoop(interval time.Duration) {
	defer d.checkpointWG.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-d.stopCheckpoint:
			return
		case <-ticker.C:
			d.mu.Lock()
			if !d.closed {
				_ = d.checkpointLocked() // failure is observed in metrics; next tick retries
			}
			d.mu.Unlock()
		}
	}
}

// Close writes a final checkpoint and releases the log. The engine refuses
// further mutations afterwards.
func (d *DurableEngine) Close() error {
	d.stopLoop()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	cpErr := d.checkpointLocked()
	closeErr := d.log.Close()
	if cpErr != nil {
		return cpErr
	}
	return closeErr
}

// Crash releases the engine without checkpointing or flushing — the test
// hook that simulates a hard kill. State on disk is whatever the WAL's fsync
// policy has made durable.
func (d *DurableEngine) Crash() error {
	d.stopLoop()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.log.Close()
}

func (d *DurableEngine) stopLoop() {
	d.mu.Lock()
	stop := d.stopCheckpoint
	d.stopCheckpoint = nil
	d.mu.Unlock()
	if stop != nil {
		close(stop)
		d.checkpointWG.Wait()
	}
}

// Read paths delegate to the inner engine; the server's readers-writer lock
// (and ShardedMonitor's internal lock) provide the read-side exclusion.

// Candidates returns the current candidate pairs.
func (d *DurableEngine) Candidates() []Pair { return d.inner.Candidates() }

// Stats returns accumulated statistics.
func (d *DurableEngine) Stats() Stats { return d.inner.Stats() }

// QueryCount and StreamCount report workload sizes.
func (d *DurableEngine) QueryCount() int  { return d.inner.QueryCount() }
func (d *DurableEngine) StreamCount() int { return d.inner.StreamCount() }

// SetMetrics forwards engine instrumentation to the wrapped engine.
func (d *DurableEngine) SetMetrics(em *EngineMetrics) { d.inner.SetMetrics(em) }

// CollectMetrics forwards the wrapped engine's collector surface.
func (d *DurableEngine) CollectMetrics(emit func(name string, value float64)) {
	if c, ok := d.inner.(interface {
		CollectMetrics(emit func(name string, value float64))
	}); ok {
		c.CollectMetrics(emit)
	}
}

// LastLSN exposes the WAL's most recent sequence number (for tests and
// operational introspection).
func (d *DurableEngine) LastLSN() uint64 { return d.log.LastLSN() }

// NextIDs reports the IDs the next AddQuery/AddStream will be assigned — the
// idempotency key a cluster coordinator uses to detect a broadcast a group
// already applied when it retries after a partial failure.
func (d *DurableEngine) NextIDs() (QueryID, StreamID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inner.nextIDs()
}

// AppliedLSN reports the LSN of the last record folded into the engine state.
// Unlike LastLSN it survives checkpoint-driven log resets, so it is the
// replication watermark replicas and coordinators compare.
func (d *DurableEngine) AppliedLSN() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.applied
}

// ApplyRecord applies one primary-shipped WAL record to a replica engine:
// append-before-apply into the replica's own log (preserving the primary's
// LSN), then fold into the engine state. Records at or below the applied
// watermark are idempotently skipped — re-shipping after a retry is harmless.
// A record beyond applied+1 is refused with ErrReplicaGap; the replica must
// catch up via RecordsSince on the primary (or a snapshot install when the
// primary's log was compacted past the gap). OnCommit is not invoked: the
// record was committed by the primary, and replicas do not re-ship.
func (d *DurableEngine) ApplyRecord(r wal.Record) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errDurableClosed
	}
	if r.LSN <= d.applied {
		return nil
	}
	if r.LSN != d.applied+1 {
		return fmt.Errorf("%w (applied %d, shipped %d)", ErrReplicaGap, d.applied, r.LSN)
	}
	off, lsn := d.log.Offset(), d.log.LastLSN()
	if err := d.log.AppendAt(r); err != nil {
		return err
	}
	if err := d.replayRecord(r); err != nil {
		if terr := d.log.TruncateTo(off, lsn); terr != nil {
			return fmt.Errorf("%w (and withdrawing the WAL record failed: %v)", err, terr)
		}
		return err
	}
	d.applied = r.LSN
	return nil
}

// RecordsSince collects the WAL records with LSN > from, the catch-up feed a
// lagging replica replays through ApplyRecord. It returns wal.ErrCompacted
// when a checkpoint has folded away records the caller still needs — the
// signal to fall back to SnapshotBytes + InstallSnapshot.
func (d *DurableEngine) RecordsSince(from uint64) ([]wal.Record, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, errDurableClosed
	}
	var recs []wal.Record
	err := d.log.RecordsFrom(from, func(r wal.Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return recs, nil
}

// SnapshotBytes serializes the current engine state (stamped with the applied
// LSN) in the checkpoint file format — the transfer unit for bootstrapping a
// replica whose gap predates the primary's log.
func (d *DurableEngine) SnapshotBytes() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, errDurableClosed
	}
	var buf bytes.Buffer
	file := buildSnapshotFile(d.inner.checkpointState(), d.applied)
	if err := writeSnapshotTo(&buf, file); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// InstallSnapshot seeds a data directory with a snapshot produced by
// SnapshotBytes, discarding any WAL the directory held: the next
// OpenDurableEngine boots from the snapshot's state at its applied LSN and
// accepts shipped records from there. It must not be called on a directory an
// open engine is using.
func InstallSnapshot(dir string, data []byte) error {
	if _, err := readSnapshotFrom(bytes.NewReader(data)); err != nil {
		return fmt.Errorf("core: validating snapshot: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: creating data dir %s: %w", dir, err)
	}
	if err := os.Remove(filepath.Join(dir, walFileName)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("core: discarding stale WAL in %s: %w", dir, err)
	}
	return wal.WriteFileAtomic(filepath.Join(dir, checkpointFileName), func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
