package core

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"nntstream/internal/graph"
	"nntstream/internal/obs"
	"nntstream/internal/wal"
)

// labelFilter is a deterministic content-sensitive filter for recovery
// tests: a (stream, query) pair is a candidate when the query's edge-label
// multiset is contained in the stream's. Unlike passthrough, its candidate
// set changes with every insertion and deletion, so a recovered engine that
// lost or double-applied a single change set produces a visibly different
// answer. It is dynamic, which lets the tests exercise RemoveQuery and
// post-seal AddQuery records too.
type labelFilter struct {
	queries map[QueryID]map[graph.Label]int
	streams map[StreamID]map[graph.Label]int
	// edges tracks each stream's edge labels so deletions (which carry no
	// label on the wire) can decrement the right count.
	edges map[StreamID]map[[2]graph.VertexID]graph.Label
}

func newLabelFilter() *labelFilter {
	return &labelFilter{
		queries: make(map[QueryID]map[graph.Label]int),
		streams: make(map[StreamID]map[graph.Label]int),
		edges:   make(map[StreamID]map[[2]graph.VertexID]graph.Label),
	}
}

func edgeKey(u, v graph.VertexID) [2]graph.VertexID {
	if u > v {
		u, v = v, u
	}
	return [2]graph.VertexID{u, v}
}

func labelCounts(g *graph.Graph) map[graph.Label]int {
	counts := make(map[graph.Label]int)
	for _, e := range g.Edges() {
		counts[e.Label]++
	}
	return counts
}

func (f *labelFilter) Name() string { return "label-multiset" }

func (f *labelFilter) AddQuery(id QueryID, q *graph.Graph) error {
	f.queries[id] = labelCounts(q)
	return nil
}

func (f *labelFilter) RemoveQuery(id QueryID) error {
	delete(f.queries, id)
	return nil
}

func (f *labelFilter) AddStream(id StreamID, g0 *graph.Graph) error {
	f.streams[id] = labelCounts(g0)
	edges := make(map[[2]graph.VertexID]graph.Label)
	for _, e := range g0.Edges() {
		edges[edgeKey(e.U, e.V)] = e.Label
	}
	f.edges[id] = edges
	return nil
}

func (f *labelFilter) Apply(id StreamID, cs graph.ChangeSet) error {
	counts, edges := f.streams[id], f.edges[id]
	for _, op := range cs {
		key := edgeKey(op.U, op.V)
		switch op.Kind {
		case graph.OpInsert:
			counts[op.EdgeLabel]++
			edges[key] = op.EdgeLabel
		case graph.OpDelete:
			l, ok := edges[key]
			if !ok {
				continue // deleting an absent edge is a no-op, as in graph.ChangeOp.Apply
			}
			counts[l]--
			delete(edges, key)
		}
	}
	return nil
}

func (f *labelFilter) Candidates() []Pair {
	var out []Pair
	for sid, scounts := range f.streams {
		for qid, qcounts := range f.queries {
			ok := true
			for l, n := range qcounts {
				if scounts[l] < n {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, Pair{Stream: sid, Query: qid})
			}
		}
	}
	return SortPairs(out)
}

// mutator is the mutation surface shared by DurableEngine and the in-memory
// twin engines the recovery tests compare against.
type mutator interface {
	AddQuery(q *graph.Graph) (QueryID, error)
	RemoveQuery(id QueryID) error
	AddStream(g0 *graph.Graph) (StreamID, error)
	StepAll(changes map[StreamID]graph.ChangeSet) ([]Pair, error)
	Candidates() []Pair
}

// recoveryOps is the scripted workload; each op becomes exactly one WAL
// record, covering all four record kinds.
func recoveryOps(t *testing.T) []func(m mutator) error {
	t.Helper()
	q0 := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 0}, [][3]int{{0, 1, 1}})
	q1 := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 0, 2: 0}, [][3]int{{0, 1, 2}, {1, 2, 3}})
	q2 := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 0}, [][3]int{{0, 1, 4}})
	s0 := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 0, 2: 0}, [][3]int{{0, 1, 1}, {1, 2, 2}})
	s1 := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 0}, [][3]int{{0, 1, 3}})
	return []func(m mutator) error{
		func(m mutator) error { _, err := m.AddQuery(q0); return err },
		func(m mutator) error { _, err := m.AddQuery(q1); return err },
		func(m mutator) error { _, err := m.AddStream(s0); return err },
		func(m mutator) error { _, err := m.AddStream(s1); return err },
		func(m mutator) error {
			_, err := m.StepAll(map[StreamID]graph.ChangeSet{
				0: {graph.InsertOp(2, 0, 3, 0, 3)},
				1: {graph.InsertOp(1, 0, 2, 0, 1)},
			})
			return err
		},
		func(m mutator) error { _, err := m.AddQuery(q2); return err }, // post-seal (dynamic filter)
		func(m mutator) error { return m.RemoveQuery(0) },
		func(m mutator) error {
			_, err := m.StepAll(map[StreamID]graph.ChangeSet{
				0: {graph.DeleteOp(1, 2), graph.InsertOp(3, 0, 4, 0, 4)},
			})
			return err
		},
	}
}

// twinEngine builds the never-crashed reference engine.
func twinEngine(shards int) mutator {
	if shards > 1 {
		return NewShardedMonitor(func() Filter { return newLabelFilter() }, shards)
	}
	return NewMonitor(newLabelFilter())
}

// expectedCandidates returns the candidate set after each op prefix:
// expected[k] is the answer after the first k ops.
func expectedCandidates(t *testing.T, shards int) [][]Pair {
	t.Helper()
	ops := recoveryOps(t)
	expected := make([][]Pair, len(ops)+1)
	for k := 0; k <= len(ops); k++ {
		m := twinEngine(shards)
		for _, op := range ops[:k] {
			if err := op(m); err != nil {
				t.Fatalf("twin op: %v", err)
			}
		}
		expected[k] = m.Candidates()
	}
	return expected
}

func pairsEqual(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func openDurable(t *testing.T, dir string, shards int, opts DurableOptions) *DurableEngine {
	t.Helper()
	opts.Shards = shards
	d, err := OpenDurableEngine(dir, func() Filter { return newLabelFilter() }, opts)
	if err != nil {
		t.Fatalf("OpenDurableEngine(%s): %v", dir, err)
	}
	return d
}

// runAndCrash applies the full workload to a fresh durable engine and kills
// it without a checkpoint, returning the raw WAL bytes.
func runAndCrash(t *testing.T, dir string, shards int) []byte {
	t.Helper()
	d := openDurable(t, dir, shards, DurableOptions{Fsync: wal.SyncAlways})
	for i, op := range recoveryOps(t) {
		if err := op(d); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := d.Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

const testWALMagicLen = 8 // len("nntwal\x00\x01")

// walFrameEnds walks the frame headers and returns the file offset at the
// end of each complete record.
func walFrameEnds(t *testing.T, data []byte) []int64 {
	t.Helper()
	var ends []int64
	off := int64(testWALMagicLen)
	for off+8 <= int64(len(data)) {
		payload := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		next := off + 8 + payload
		if next > int64(len(data)) {
			t.Fatalf("frame at %d overruns file", off)
		}
		ends = append(ends, next)
		off = next
	}
	if off != int64(len(data)) {
		t.Fatalf("trailing %d bytes after last frame", int64(len(data))-off)
	}
	return ends
}

// killPoint boots an engine from a WAL prefix cut at an arbitrary byte.
func killPoint(t *testing.T, data []byte, cut int64, shards int) *DurableEngine {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	return openDurable(t, dir, shards, DurableOptions{Fsync: wal.SyncAlways})
}

// TestDurableKillPointEveryByte is the crash-recovery property test: for a
// WAL torn at every possible byte boundary, recovery must reach exactly the
// state of a never-crashed engine that executed the surviving record prefix.
func TestDurableKillPointEveryByte(t *testing.T) {
	for _, shards := range []int{1, 3} {
		shards := shards
		t.Run(map[int]string{1: "monitor", 3: "sharded"}[shards], func(t *testing.T) {
			data := runAndCrash(t, t.TempDir(), shards)
			ends := walFrameEnds(t, data)
			expected := expectedCandidates(t, shards)
			if len(ends) != len(expected)-1 {
				t.Fatalf("WAL has %d records for %d ops", len(ends), len(expected)-1)
			}
			for cut := int64(testWALMagicLen); cut <= int64(len(data)); cut++ {
				complete := 0
				for _, end := range ends {
					if end <= cut {
						complete++
					}
				}
				d := killPoint(t, data, cut, shards)
				if got := d.Candidates(); !pairsEqual(got, expected[complete]) {
					t.Fatalf("cut at byte %d (%d complete records): candidates %v, want %v",
						cut, complete, got, expected[complete])
				}
				if err := d.Crash(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestDurableRecoveredEngineAcceptsWrites ensures a recovered engine is live:
// post-recovery mutations append, and a second recovery includes them.
func TestDurableRecoveredEngineAcceptsWrites(t *testing.T) {
	data := runAndCrash(t, t.TempDir(), 1)
	// Cut mid-final-record: the torn record is discarded on recovery.
	ends := walFrameEnds(t, data)
	cut := ends[len(ends)-1] - 3
	d := killPoint(t, data, cut, 1)
	if _, err := d.StepAll(map[StreamID]graph.ChangeSet{1: {graph.InsertOp(5, 0, 6, 0, 9)}}); err != nil {
		t.Fatalf("step after recovery: %v", err)
	}
	want := d.Candidates()
	dir := filepath.Dir(d.cpPath)
	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}
	d2 := openDurable(t, dir, 1, DurableOptions{Fsync: wal.SyncAlways})
	defer d2.Crash()
	if got := d2.Candidates(); !pairsEqual(got, want) {
		t.Fatalf("second recovery: candidates %v, want %v", got, want)
	}
}

// TestDurableCheckpointThenCrash covers checkpoint + post-checkpoint records.
func TestDurableCheckpointThenCrash(t *testing.T) {
	for _, shards := range []int{1, 3} {
		shards := shards
		t.Run(map[int]string{1: "monitor", 3: "sharded"}[shards], func(t *testing.T) {
			dir := t.TempDir()
			ops := recoveryOps(t)
			d := openDurable(t, dir, shards, DurableOptions{Fsync: wal.SyncAlways})
			mid := len(ops) / 2
			for _, op := range ops[:mid] {
				if err := op(d); err != nil {
					t.Fatal(err)
				}
			}
			if err := d.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			for _, op := range ops[mid:] {
				if err := op(d); err != nil {
					t.Fatal(err)
				}
			}
			if err := d.Crash(); err != nil {
				t.Fatal(err)
			}
			d2 := openDurable(t, dir, shards, DurableOptions{Fsync: wal.SyncAlways})
			defer d2.Crash()
			want := expectedCandidates(t, shards)[len(ops)]
			if got := d2.Candidates(); !pairsEqual(got, want) {
				t.Fatalf("recovered candidates %v, want %v", got, want)
			}
		})
	}
}

// TestDurableStaleWALAfterCheckpoint reconstructs the crash window between
// checkpoint publication and log truncation: the checkpoint already covers
// every record still in the log, and replay must skip them all (replaying
// would fail on duplicate query IDs).
func TestDurableStaleWALAfterCheckpoint(t *testing.T) {
	preDir := t.TempDir()
	walBytes := runAndCrash(t, preDir, 1) // wal.log with records 1..n, no checkpoint

	// Reopen the same dir and checkpoint: checkpoint.json now has WALSeq=n
	// and the log is reset.
	d := openDurable(t, preDir, 1, DurableOptions{Fsync: wal.SyncAlways})
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}

	// Put the pre-checkpoint records back, as if the crash hit after the
	// checkpoint rename but before the log truncation.
	if err := os.WriteFile(filepath.Join(preDir, "wal.log"), walBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	d2 := openDurable(t, preDir, 1, DurableOptions{Fsync: wal.SyncAlways})
	want := expectedCandidates(t, 1)[len(recoveryOps(t))]
	if got := d2.Candidates(); !pairsEqual(got, want) {
		t.Fatalf("recovered candidates %v, want %v", got, want)
	}
	// The engine must keep accepting writes with LSNs above the checkpoint.
	if _, err := d2.StepAll(map[StreamID]graph.ChangeSet{0: {graph.InsertOp(9, 0, 10, 0, 2)}}); err != nil {
		t.Fatal(err)
	}
	want2 := d2.Candidates()
	if err := d2.Crash(); err != nil {
		t.Fatal(err)
	}
	d3 := openDurable(t, preDir, 1, DurableOptions{Fsync: wal.SyncAlways})
	defer d3.Crash()
	if got := d3.Candidates(); !pairsEqual(got, want2) {
		t.Fatalf("post-window write lost: candidates %v, want %v", got, want2)
	}
}

// TestDurableCleanRestartAfterCheckpoint covers the LSN rebase: a fresh
// process's log restarts numbering at 1, below the checkpoint's WALSeq, and
// boot must rebase so new records are not skipped by the next recovery.
func TestDurableCleanRestartAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ops := recoveryOps(t)
	d := openDurable(t, dir, 1, DurableOptions{Fsync: wal.SyncAlways})
	for _, op := range ops {
		if err := op(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil { // Close checkpoints and resets the log
		t.Fatal(err)
	}
	d2 := openDurable(t, dir, 1, DurableOptions{Fsync: wal.SyncAlways})
	if _, err := d2.StepAll(map[StreamID]graph.ChangeSet{1: {graph.InsertOp(7, 0, 8, 0, 4)}}); err != nil {
		t.Fatal(err)
	}
	want := d2.Candidates()
	if err := d2.Crash(); err != nil { // no checkpoint: the new record must replay
		t.Fatal(err)
	}
	d3 := openDurable(t, dir, 1, DurableOptions{Fsync: wal.SyncAlways})
	defer d3.Crash()
	if got := d3.Candidates(); !pairsEqual(got, want) {
		t.Fatalf("write after clean restart lost: candidates %v, want %v", got, want)
	}
}

// TestDurableStaleCheckpointTempIgnored: a crash mid-checkpoint leaves a
// temp file that boot must discard.
func TestDurableStaleCheckpointTempIgnored(t *testing.T) {
	dir := t.TempDir()
	runAndCrash(t, dir, 1)
	if err := os.WriteFile(filepath.Join(dir, "checkpoint.json.tmp"), []byte("{half a check"), 0o644); err != nil {
		t.Fatal(err)
	}
	d := openDurable(t, dir, 1, DurableOptions{Fsync: wal.SyncAlways})
	defer d.Crash()
	want := expectedCandidates(t, 1)[len(recoveryOps(t))]
	if got := d.Candidates(); !pairsEqual(got, want) {
		t.Fatalf("recovered candidates %v, want %v", got, want)
	}
	if _, err := os.Stat(filepath.Join(dir, "checkpoint.json.tmp")); !os.IsNotExist(err) {
		t.Fatal("stale checkpoint temp file survived boot")
	}
}

// TestDurableRejectedOpLeavesNoRecord: append-before-apply must withdraw the
// record of an operation the engine rejects, or replay would diverge.
func TestDurableRejectedOpLeavesNoRecord(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, 1, DurableOptions{Fsync: wal.SyncAlways})
	for _, op := range recoveryOps(t) {
		if err := op(d); err != nil {
			t.Fatal(err)
		}
	}
	lsn := d.LastLSN()
	// Invalid change set: label conflict on stream 0's vertex 0.
	if _, err := d.StepAll(map[StreamID]graph.ChangeSet{0: {graph.InsertOp(0, 9, 11, 0, 1)}}); err == nil {
		t.Fatal("invalid change set accepted")
	}
	if got := d.LastLSN(); got != lsn {
		t.Fatalf("rejected op advanced the LSN: %d -> %d", lsn, got)
	}
	// Unknown stream: rejected by staging, record withdrawn.
	if _, err := d.StepAll(map[StreamID]graph.ChangeSet{42: nil}); err == nil {
		t.Fatal("unknown stream accepted")
	}
	want := d.Candidates()
	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}
	d2 := openDurable(t, dir, 1, DurableOptions{Fsync: wal.SyncAlways})
	defer d2.Crash()
	if got := d2.Candidates(); !pairsEqual(got, want) {
		t.Fatalf("recovered candidates %v, want %v", got, want)
	}
	if got := d2.LastLSN(); got != lsn {
		t.Fatalf("replayed LSN %d, want %d", got, lsn)
	}
}

// TestDurableFaultInjection drives the engine through injected write faults:
// the failed operation surfaces an error, the log stays consistent, and
// recovery sees exactly the acknowledged operations.
func TestDurableFaultInjection(t *testing.T) {
	dir := t.TempDir()
	var ff *wal.FaultFile
	d := openDurable(t, dir, 1, DurableOptions{
		Fsync: wal.SyncAlways,
		WrapFile: func(f wal.LogFile) wal.LogFile {
			ff = wal.NewFaultFile(f, wal.FaultNone, 0)
			return ff
		},
	})
	ops := recoveryOps(t)
	mid := len(ops) / 2
	for _, op := range ops[:mid] {
		if err := op(d); err != nil {
			t.Fatal(err)
		}
	}
	// The next append tears 10 bytes in.
	ff.Arm(wal.FaultError, 10)
	if err := ops[mid](d); err == nil {
		t.Fatal("op succeeded through an injected write fault")
	}
	if ff.Tripped() == 0 {
		t.Fatal("fault never fired")
	}
	ff.Heal()
	// The engine retries cleanly after the device recovers.
	for _, op := range ops[mid:] {
		if err := op(d); err != nil {
			t.Fatalf("op after heal: %v", err)
		}
	}
	want := d.Candidates()
	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}
	d2 := openDurable(t, dir, 1, DurableOptions{Fsync: wal.SyncAlways})
	defer d2.Crash()
	if got := d2.Candidates(); !pairsEqual(got, want) {
		t.Fatalf("recovered candidates %v, want %v", got, want)
	}
}

// TestDurableMetrics wires a registry through the engine and checks the
// durability instruments move.
func TestDurableMetrics(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	metrics := wal.NewMetrics(reg)
	d := openDurable(t, dir, 1, DurableOptions{Fsync: wal.SyncAlways, Metrics: metrics})
	for _, op := range recoveryOps(t) {
		if err := op(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}
	d2 := openDurable(t, dir, 1, DurableOptions{Fsync: wal.SyncAlways, Metrics: metrics})
	defer d2.Crash()
	if n := metrics.RecordsAppended.Value(); n != int64(len(recoveryOps(t))) {
		t.Fatalf("records appended = %d, want %d", n, len(recoveryOps(t)))
	}
	if metrics.Fsyncs.Value() == 0 {
		t.Fatal("no fsyncs recorded under SyncAlways")
	}
	if got := metrics.Recoveries.Value(); got != 2 {
		t.Fatalf("recoveries = %d, want 2", got)
	}
	if metrics.Checkpoints.Value() == 0 {
		t.Fatal("no checkpoints recorded")
	}
	if metrics.AppendSeconds.Count() == 0 || metrics.FsyncSeconds.Count() == 0 {
		t.Fatal("latency histograms empty")
	}
}
