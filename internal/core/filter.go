// Package core is the continuous-monitoring engine: it registers a fixed
// set of query pattern graphs and a set of graph streams, advances the
// streams by graph change operations, and reports, at every timestamp, the
// possibly-joinable (stream, query) pairs produced by a pluggable filter
// (Definition 2.8). Filters must never produce false negatives; the Monitor
// can verify candidates with exact subgraph isomorphism to measure a
// filter's false-positive rate.
package core

import (
	"fmt"
	"sort"

	"nntstream/internal/graph"
)

// QueryID identifies a registered query pattern.
type QueryID int

// StreamID identifies a registered graph stream.
type StreamID int

// Pair is one possibly-joinable (stream, query) pair reported at a
// timestamp.
type Pair struct {
	Stream StreamID
	Query  QueryID
}

func (p Pair) String() string { return fmt.Sprintf("(G%d,Q%d)", p.Stream, p.Query) }

// SortPairs orders pairs by (Stream, Query) in place and returns the slice.
func SortPairs(ps []Pair) []Pair {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Stream != ps[j].Stream {
			return ps[i].Stream < ps[j].Stream
		}
		return ps[i].Query < ps[j].Query
	})
	return ps
}

// Filter is a continuous subgraph-search filter. Implementations maintain
// whatever per-stream state they need; the Monitor guarantees that all
// queries are registered before the first stream (the paper assumes a fixed
// query workload derived from domain knowledge), that stream change sets
// arrive in timestamp order, and that calls are not concurrent.
//
// The contract every implementation must honor: after any sequence of
// AddQuery/AddStream/Apply calls, Candidates contains every pair (G,Q) for
// which Q is subgraph-isomorphic to the current graph of G. False positives
// are permitted (fewer is better); false negatives are not.
//
// Candidates is additionally a read path: engines allow multiple Candidates
// calls to run concurrently with each other (never with a mutating call), so
// implementations must either not mutate observable state in Candidates or
// synchronize such mutation internally (see gindex's lazy re-mining).
type Filter interface {
	// Name identifies the filter in reports and benchmarks.
	Name() string
	// AddQuery registers a query pattern. Called before any AddStream.
	AddQuery(id QueryID, q *graph.Graph) error
	// AddStream registers a stream with its starting graph G_0.
	AddStream(id StreamID, g0 *graph.Graph) error
	// Apply advances one stream by one timestamp's change set.
	Apply(id StreamID, cs graph.ChangeSet) error
	// Candidates returns the current possibly-joinable pairs, sorted by
	// (Stream, Query).
	Candidates() []Pair
}

// BatchApplier is an optional Filter extension: the engine hands one
// timestamp's change sets for all of its (or its shard's) streams to the
// filter at once, so the filter can fan the per-(stream, query) dominance
// re-evaluation out over a bounded worker pool instead of walking the
// streams one by one.
//
// ApplyAll must be observationally equivalent to calling Apply once per
// entry in any order — entries address distinct streams, and the engines
// validate every change set against a cloned canonical graph before the
// fan-out, so a mid-batch failure reports an error with the filter state
// unspecified, exactly like a failed Apply sequence.
type BatchApplier interface {
	// ApplyAll advances several streams by one timestamp's change sets.
	ApplyAll(changes map[StreamID]graph.ChangeSet) error
}

// ParallelFilter is implemented by filters whose evaluation fans out over
// a bounded worker pool. SetWorkers(n) bounds the pool at n goroutines;
// n <= 0 sizes it to runtime.GOMAXPROCS and n == 1 forces the sequential
// path. Filters default to sequential until an engine opts them in, so
// the paper-faithful single-core cost model stays the default for direct
// library use.
type ParallelFilter interface {
	SetWorkers(n int)
}

// DynamicFilter extends Filter with a dynamic query workload — the paper's
// stated future work (Section II-B). Implementations accept AddQuery after
// streams are registered (immediately evaluating the new pattern against
// every current stream graph) and support removing a registered pattern.
type DynamicFilter interface {
	Filter
	// RemoveQuery deregisters a pattern; it no longer appears in
	// Candidates.
	RemoveQuery(id QueryID) error
}
