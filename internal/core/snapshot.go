package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"nntstream/internal/graph"
)

// Snapshot persistence: a Monitor's logical state is its query set plus the
// canonical current graph of every stream (filters are deterministic
// functions of that state, so any filter can be rebuilt from it). A
// restarted service writes a snapshot on shutdown, restores it on boot, and
// resumes consuming change sets.

type snapshotGraph struct {
	Vertices []snapshotVertex `json:"vertices"`
	Edges    []snapshotEdge   `json:"edges"`
}

type snapshotVertex struct {
	ID    int32  `json:"id"`
	Label uint16 `json:"label"`
}

type snapshotEdge struct {
	U     int32  `json:"u"`
	V     int32  `json:"v"`
	Label uint16 `json:"label"`
}

type snapshotEntry struct {
	ID    int           `json:"id"`
	Graph snapshotGraph `json:"graph"`
}

type snapshotFile struct {
	Version int             `json:"version"`
	Queries []snapshotEntry `json:"queries"`
	Streams []snapshotEntry `json:"streams"`
	// NextQuery/NextStream persist the ID allocators so gaps at the top of
	// the range (a removed highest query) survive a restore. Zero values are
	// valid version-1 snapshots: restore then derives the allocators from the
	// highest IDs present.
	NextQuery  int `json:"next_query,omitempty"`
	NextStream int `json:"next_stream,omitempty"`
	// WALSeq is the LSN of the last WAL record folded into this snapshot.
	// Replay skips records at or below it, which closes the crash window
	// between checkpoint publication and log truncation.
	WALSeq uint64 `json:"wal_seq,omitempty"`
}

const snapshotVersion = 1

func encodeGraph(g *graph.Graph) snapshotGraph {
	var out snapshotGraph
	for _, v := range g.VertexIDs() {
		out.Vertices = append(out.Vertices, snapshotVertex{ID: int32(v), Label: uint16(g.MustVertexLabel(v))})
	}
	for _, e := range g.Edges() {
		out.Edges = append(out.Edges, snapshotEdge{U: int32(e.U), V: int32(e.V), Label: uint16(e.Label)})
	}
	return out
}

func decodeGraph(sg snapshotGraph) (*graph.Graph, error) {
	g := graph.New()
	for _, v := range sg.Vertices {
		if err := g.AddVertex(graph.VertexID(v.ID), graph.Label(v.Label)); err != nil {
			return nil, err
		}
	}
	for _, e := range sg.Edges {
		if err := g.AddEdge(graph.VertexID(e.U), graph.VertexID(e.V), graph.Label(e.Label)); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// buildSnapshotFile serializes an engine's logical state, stamping walSeq as
// the LSN already folded into the snapshot.
func buildSnapshotFile(st engineState, walSeq uint64) snapshotFile {
	file := snapshotFile{
		Version:    snapshotVersion,
		NextQuery:  int(st.nextQ),
		NextStream: int(st.nextS),
		WALSeq:     walSeq,
	}
	qids := make([]int, 0, len(st.queries))
	for id := range st.queries {
		qids = append(qids, int(id))
	}
	sort.Ints(qids)
	for _, id := range qids {
		file.Queries = append(file.Queries, snapshotEntry{
			ID: id, Graph: encodeGraph(st.queries[QueryID(id)]),
		})
	}
	sids := make([]int, 0, len(st.streams))
	for id := range st.streams {
		sids = append(sids, int(id))
	}
	sort.Ints(sids)
	for _, id := range sids {
		file.Streams = append(file.Streams, snapshotEntry{
			ID: id, Graph: encodeGraph(st.streams[StreamID(id)]),
		})
	}
	return file
}

func writeSnapshotTo(w io.Writer, file snapshotFile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(file)
}

func readSnapshotFrom(r io.Reader) (snapshotFile, error) {
	var file snapshotFile
	if err := json.NewDecoder(r).Decode(&file); err != nil {
		return snapshotFile{}, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if file.Version != snapshotVersion {
		return snapshotFile{}, fmt.Errorf("core: unsupported snapshot version %d", file.Version)
	}
	return file, nil
}

// snapshotRestorer is the subset of engine behavior snapshot loading needs;
// both Monitor and ShardedMonitor implement it.
type snapshotRestorer interface {
	replayAddQuery(id QueryID, q *graph.Graph) error
	replayAddStream(id StreamID, g0 *graph.Graph) error
	setNextIDs(q QueryID, s StreamID)
}

// restoreInto replays a snapshot's entries into a fresh engine.
func restoreInto(e snapshotRestorer, file snapshotFile) error {
	for _, entry := range file.Queries {
		g, err := decodeGraph(entry.Graph)
		if err != nil {
			return fmt.Errorf("core: snapshot query %d: %w", entry.ID, err)
		}
		if err := e.replayAddQuery(QueryID(entry.ID), g); err != nil {
			return fmt.Errorf("core: snapshot query %d: %w", entry.ID, err)
		}
	}
	for _, entry := range file.Streams {
		g, err := decodeGraph(entry.Graph)
		if err != nil {
			return fmt.Errorf("core: snapshot stream %d: %w", entry.ID, err)
		}
		if err := e.replayAddStream(StreamID(entry.ID), g); err != nil {
			return fmt.Errorf("core: snapshot stream %d: %w", entry.ID, err)
		}
	}
	e.setNextIDs(QueryID(file.NextQuery), StreamID(file.NextStream))
	return nil
}

// WriteSnapshot serializes the monitor's queries and canonical stream
// graphs as JSON. Filter-internal state is not persisted; RestoreMonitor
// rebuilds it deterministically.
func (m *Monitor) WriteSnapshot(w io.Writer) error {
	return writeSnapshotTo(w, buildSnapshotFile(m.checkpointState(), 0))
}

// RestoreMonitor rebuilds a monitor around a fresh filter from a snapshot,
// preserving the original query and stream IDs (including gaps left by
// removed queries).
func RestoreMonitor(r io.Reader, f Filter) (*Monitor, error) {
	file, err := readSnapshotFrom(r)
	if err != nil {
		return nil, err
	}
	m := NewMonitor(f)
	if err := restoreInto(m, file); err != nil {
		return nil, err
	}
	return m, nil
}
