package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"nntstream/internal/graph"
	"nntstream/internal/iso"
)

// Snapshot persistence: a Monitor's logical state is its query set plus the
// canonical current graph of every stream (filters are deterministic
// functions of that state, so any filter can be rebuilt from it). A
// restarted service writes a snapshot on shutdown, restores it on boot, and
// resumes consuming change sets.

type snapshotGraph struct {
	Vertices []snapshotVertex `json:"vertices"`
	Edges    []snapshotEdge   `json:"edges"`
}

type snapshotVertex struct {
	ID    int32  `json:"id"`
	Label uint16 `json:"label"`
}

type snapshotEdge struct {
	U     int32  `json:"u"`
	V     int32  `json:"v"`
	Label uint16 `json:"label"`
}

type snapshotEntry struct {
	ID    int           `json:"id"`
	Graph snapshotGraph `json:"graph"`
}

type snapshotFile struct {
	Version int             `json:"version"`
	Queries []snapshotEntry `json:"queries"`
	Streams []snapshotEntry `json:"streams"`
}

const snapshotVersion = 1

func encodeGraph(g *graph.Graph) snapshotGraph {
	var out snapshotGraph
	for _, v := range g.VertexIDs() {
		out.Vertices = append(out.Vertices, snapshotVertex{ID: int32(v), Label: uint16(g.MustVertexLabel(v))})
	}
	for _, e := range g.Edges() {
		out.Edges = append(out.Edges, snapshotEdge{U: int32(e.U), V: int32(e.V), Label: uint16(e.Label)})
	}
	return out
}

func decodeGraph(sg snapshotGraph) (*graph.Graph, error) {
	g := graph.New()
	for _, v := range sg.Vertices {
		if err := g.AddVertex(graph.VertexID(v.ID), graph.Label(v.Label)); err != nil {
			return nil, err
		}
	}
	for _, e := range sg.Edges {
		if err := g.AddEdge(graph.VertexID(e.U), graph.VertexID(e.V), graph.Label(e.Label)); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// WriteSnapshot serializes the monitor's queries and canonical stream
// graphs as JSON. Filter-internal state is not persisted; RestoreMonitor
// rebuilds it deterministically.
func (m *Monitor) WriteSnapshot(w io.Writer) error {
	file := snapshotFile{Version: snapshotVersion}
	qids := make([]int, 0, len(m.queries))
	for id := range m.queries {
		qids = append(qids, int(id))
	}
	sort.Ints(qids)
	for _, id := range qids {
		file.Queries = append(file.Queries, snapshotEntry{
			ID: id, Graph: encodeGraph(m.queries[QueryID(id)]),
		})
	}
	sids := make([]int, 0, len(m.streams))
	for id := range m.streams {
		sids = append(sids, int(id))
	}
	sort.Ints(sids)
	for _, id := range sids {
		file.Streams = append(file.Streams, snapshotEntry{
			ID: id, Graph: encodeGraph(m.streams[StreamID(id)]),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(file)
}

// RestoreMonitor rebuilds a monitor around a fresh filter from a snapshot,
// preserving the original query and stream IDs (including gaps left by
// removed queries).
func RestoreMonitor(r io.Reader, f Filter) (*Monitor, error) {
	var file snapshotFile
	if err := json.NewDecoder(r).Decode(&file); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if file.Version != snapshotVersion {
		return nil, fmt.Errorf("core: unsupported snapshot version %d", file.Version)
	}
	m := NewMonitor(f)
	for _, entry := range file.Queries {
		g, err := decodeGraph(entry.Graph)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot query %d: %w", entry.ID, err)
		}
		id := QueryID(entry.ID)
		if _, dup := m.queries[id]; dup {
			return nil, fmt.Errorf("core: snapshot has duplicate query id %d", entry.ID)
		}
		if err := f.AddQuery(id, g); err != nil {
			return nil, fmt.Errorf("core: snapshot query %d: %w", entry.ID, err)
		}
		m.queries[id] = g
		m.matchers[id] = iso.NewMatcher(g)
		if id >= m.nextQ {
			m.nextQ = id + 1
		}
	}
	for _, entry := range file.Streams {
		g, err := decodeGraph(entry.Graph)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot stream %d: %w", entry.ID, err)
		}
		id := StreamID(entry.ID)
		if _, dup := m.streams[id]; dup {
			return nil, fmt.Errorf("core: snapshot has duplicate stream id %d", entry.ID)
		}
		if err := f.AddStream(id, g); err != nil {
			return nil, fmt.Errorf("core: snapshot stream %d: %w", entry.ID, err)
		}
		m.streams[id] = g
		if id >= m.nextS {
			m.nextS = id + 1
		}
		m.sealed = true
	}
	return m, nil
}
