package core

import "errors"

// Sentinel errors classifying engine failures. The HTTP layer
// (internal/server) maps these onto status codes with errors.Is, so engine
// methods wrap them with %w rather than formatting ad-hoc strings.
var (
	// ErrUnknownStream reports an operation on a stream ID that was never
	// registered (or, in future, was retired).
	ErrUnknownStream = errors.New("unknown stream")
	// ErrUnknownQuery reports an operation on a query ID that is not
	// registered.
	ErrUnknownQuery = errors.New("unknown query")
	// ErrSealed reports a query registration after the first stream on a
	// filter that requires the paper's fixed query workload (that is, one
	// not implementing DynamicFilter).
	ErrSealed = errors.New("query workload is sealed: all queries must precede the first stream")
	// ErrUnsupported reports an operation the configured filter cannot
	// perform (for example query removal on a non-dynamic filter).
	ErrUnsupported = errors.New("operation not supported by this filter")
	// ErrReplicaGap reports a shipped WAL record that is not the next record
	// the replica expects: records between the replica's applied LSN and the
	// shipped one are missing, so the replica must catch up (WAL tail fetch or
	// snapshot install) before applying further records.
	ErrReplicaGap = errors.New("replica is behind: shipped record leaves an LSN gap")
)
