package core

import (
	"errors"
	"path/filepath"
	"testing"

	"nntstream/internal/graph"
	"nntstream/internal/obs"
	"nntstream/internal/wal"
)

// openReplica opens a durable engine acting as a replica (no OnCommit; it
// receives records through ApplyRecord).
func openReplica(t *testing.T, dir string, shards int) *DurableEngine {
	t.Helper()
	return openDurable(t, dir, shards, DurableOptions{Fsync: wal.SyncNever})
}

// TestReplicationShippedRecordsConverge runs the full scripted workload on a
// primary whose OnCommit ships every record straight into a replica, checking
// after every op that the replica's candidates match the never-crashed twin.
func TestReplicationShippedRecordsConverge(t *testing.T) {
	for _, shards := range []int{1, 3} {
		base := t.TempDir()
		replica := openReplica(t, filepath.Join(base, "replica"), shards)
		defer replica.Close()
		var shipped []wal.Record
		primary := openDurable(t, filepath.Join(base, "primary"), shards, DurableOptions{
			Fsync: wal.SyncNever,
			OnCommit: func(r wal.Record) {
				shipped = append(shipped, r)
				if err := replica.ApplyRecord(r); err != nil {
					t.Errorf("shards=%d: ApplyRecord(LSN %d): %v", shards, r.LSN, err)
				}
			},
		})
		defer primary.Close()

		expected := expectedCandidates(t, shards)
		for i, op := range recoveryOps(t) {
			if err := op(primary); err != nil {
				t.Fatalf("shards=%d op %d: %v", shards, i, err)
			}
			if got := replica.Candidates(); !pairsEqual(got, expected[i+1]) {
				t.Fatalf("shards=%d after op %d: replica candidates %v, want %v", shards, i, got, expected[i+1])
			}
		}
		if p, r := primary.AppliedLSN(), replica.AppliedLSN(); p != r {
			t.Fatalf("shards=%d: applied LSN diverged: primary %d, replica %d", shards, p, r)
		}
		// Re-shipping the whole history (a retry storm) is a no-op.
		for _, r := range shipped {
			if err := replica.ApplyRecord(r); err != nil {
				t.Fatalf("shards=%d re-ship LSN %d: %v", shards, r.LSN, err)
			}
		}
		if got := replica.Candidates(); !pairsEqual(got, expected[len(expected)-1]) {
			t.Fatalf("shards=%d: re-ship changed replica state", shards)
		}
	}
}

// TestReplicationGapAndCatchUp drops a span of shipped records, verifies the
// replica refuses the out-of-order record with ErrReplicaGap, and closes the
// gap with the primary's RecordsSince feed.
func TestReplicationGapAndCatchUp(t *testing.T) {
	base := t.TempDir()
	replica := openReplica(t, filepath.Join(base, "replica"), 1)
	defer replica.Close()
	ops := recoveryOps(t)
	lost := 3 // ship ops[:lost], drop the rest on the floor
	var n int
	primary := openDurable(t, filepath.Join(base, "primary"), 1, DurableOptions{
		Fsync: wal.SyncNever,
		OnCommit: func(r wal.Record) {
			n++
			if n > lost {
				return // simulated network loss
			}
			if err := replica.ApplyRecord(r); err != nil {
				t.Errorf("ApplyRecord(LSN %d): %v", r.LSN, err)
			}
		},
	})
	defer primary.Close()
	for i, op := range ops {
		if err := op(primary); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}

	// A record past the gap is refused, and refused idempotently.
	head, err := primary.RecordsSince(primary.AppliedLSN() - 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := replica.ApplyRecord(head[len(head)-1]); !errors.Is(err, ErrReplicaGap) {
			t.Fatalf("ApplyRecord over gap = %v, want ErrReplicaGap", err)
		}
	}
	if replica.AppliedLSN() != uint64(lost) {
		t.Fatalf("replica applied %d after refused ship, want %d", replica.AppliedLSN(), lost)
	}

	// Catch-up: replay everything past the replica's watermark.
	tail, err := primary.RecordsSince(replica.AppliedLSN())
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != len(ops)-lost {
		t.Fatalf("RecordsSince returned %d records, want %d", len(tail), len(ops)-lost)
	}
	for _, r := range tail {
		if err := replica.ApplyRecord(r); err != nil {
			t.Fatalf("catch-up LSN %d: %v", r.LSN, err)
		}
	}
	want := expectedCandidates(t, 1)
	if got := replica.Candidates(); !pairsEqual(got, want[len(want)-1]) {
		t.Fatalf("after catch-up: replica candidates %v, want %v", got, want[len(want)-1])
	}
	if p, r := primary.AppliedLSN(), replica.AppliedLSN(); p != r {
		t.Fatalf("applied LSN diverged after catch-up: primary %d, replica %d", p, r)
	}
}

// TestReplicationSnapshotBootstrap checkpoints the primary mid-workload (so
// the WAL prefix is compacted away), then bootstraps a fresh replica from
// SnapshotBytes+InstallSnapshot and streams the remaining records into it.
func TestReplicationSnapshotBootstrap(t *testing.T) {
	base := t.TempDir()
	ops := recoveryOps(t)
	cut := 4
	var late []wal.Record
	primary := openDurable(t, filepath.Join(base, "primary"), 1, DurableOptions{
		Fsync: wal.SyncNever,
		OnCommit: func(r wal.Record) {
			if r.LSN > uint64(cut) {
				late = append(late, r)
			}
		},
	})
	defer primary.Close()
	for i, op := range ops[:cut] {
		if err := op(primary); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap, err := primary.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range ops[cut:] {
		if err := op(primary); err != nil {
			t.Fatalf("op %d: %v", cut+i, err)
		}
	}

	// The checkpoint compacted records 1..cut: a from-zero replica cannot be
	// fed from the log.
	if _, err := primary.RecordsSince(0); !errors.Is(err, wal.ErrCompacted) {
		t.Fatalf("RecordsSince(0) after checkpoint = %v, want ErrCompacted", err)
	}

	replDir := filepath.Join(base, "replica")
	if err := InstallSnapshot(replDir, snap); err != nil {
		t.Fatalf("InstallSnapshot: %v", err)
	}
	replica := openReplica(t, replDir, 1)
	defer replica.Close()
	if replica.AppliedLSN() != uint64(cut) {
		t.Fatalf("bootstrapped replica applied %d, want %d", replica.AppliedLSN(), cut)
	}
	for _, r := range late {
		if err := replica.ApplyRecord(r); err != nil {
			t.Fatalf("post-bootstrap ship LSN %d: %v", r.LSN, err)
		}
	}
	want := expectedCandidates(t, 1)
	if got := replica.Candidates(); !pairsEqual(got, want[len(want)-1]) {
		t.Fatalf("bootstrapped replica candidates %v, want %v", got, want[len(want)-1])
	}

	// InstallSnapshot rejects garbage rather than planting an unbootable dir.
	if err := InstallSnapshot(filepath.Join(base, "bad"), []byte("not a snapshot")); err == nil {
		t.Fatal("InstallSnapshot accepted garbage")
	}
}

// TestReplicationPromotedReplicaShips verifies the failover contract: a
// replica built purely from shipped records can be reopened as a primary (its
// own WAL holds the history) and continue accepting writes.
func TestReplicationPromotedReplicaShips(t *testing.T) {
	base := t.TempDir()
	replDir := filepath.Join(base, "replica")
	replica := openReplica(t, replDir, 1)
	primary := openDurable(t, filepath.Join(base, "primary"), 1, DurableOptions{
		Fsync: wal.SyncNever,
		OnCommit: func(r wal.Record) {
			if err := replica.ApplyRecord(r); err != nil {
				t.Errorf("ApplyRecord(LSN %d): %v", r.LSN, err)
			}
		},
	})
	ops := recoveryOps(t)
	for i, op := range ops[:5] {
		if err := op(primary); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	// Primary dies hard; replica is promoted in place (no reopen needed) and
	// serves the remaining writes itself.
	if err := primary.Crash(); err != nil {
		t.Fatal(err)
	}
	for i, op := range ops[5:] {
		if err := op(replica); err != nil {
			t.Fatalf("post-promotion op %d: %v", 5+i, err)
		}
	}
	want := expectedCandidates(t, 1)
	if got := replica.Candidates(); !pairsEqual(got, want[len(want)-1]) {
		t.Fatalf("promoted replica candidates %v, want %v", got, want[len(want)-1])
	}
	// And its own durability holds: crash the promoted node and recover it.
	if err := replica.Crash(); err != nil {
		t.Fatal(err)
	}
	recovered := openReplica(t, replDir, 1)
	defer recovered.Close()
	if got := recovered.Candidates(); !pairsEqual(got, want[len(want)-1]) {
		t.Fatalf("recovered promoted replica candidates %v, want %v", got, want[len(want)-1])
	}
}

// TestCheckpointFaultLeavesRecoverableState injects a failure into each stage
// of the checkpoint's atomic file replacement and verifies the failure is
// contained: the error is surfaced and counted, the WAL is not reset, the
// engine keeps accepting writes, and a crash right after still recovers to
// the twin's state from the previous checkpoint + intact log.
func TestCheckpointFaultLeavesRecoverableState(t *testing.T) {
	for _, stage := range []wal.AtomicStage{wal.StageWrite, wal.StageSync, wal.StageRename} {
		t.Run(stage.String(), func(t *testing.T) {
			dir := t.TempDir()
			fault := &wal.AtomicFault{}
			metrics := wal.NewMetrics(obs.NewRegistry())
			d := openDurable(t, dir, 1, DurableOptions{
				Fsync:           wal.SyncAlways,
				Metrics:         metrics,
				CheckpointFault: fault,
			})
			ops := recoveryOps(t)
			split := 5
			for i, op := range ops[:split] {
				if err := op(d); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			}
			// An early checkpoint gives the failed attempt a predecessor to
			// preserve.
			if err := d.Checkpoint(); err != nil {
				t.Fatalf("baseline checkpoint: %v", err)
			}
			for i, op := range ops[split:] {
				if err := op(d); err != nil {
					t.Fatalf("op %d: %v", split+i, err)
				}
			}

			fault.Arm(stage)
			lsnBefore := d.LastLSN()
			if err := d.Checkpoint(); err == nil {
				t.Fatal("checkpoint with injected fault succeeded")
			}
			if fault.Tripped() != 1 {
				t.Fatalf("fault tripped %d times, want 1", fault.Tripped())
			}
			if got := metrics.CheckpointFailures.Value(); got != 1 {
				t.Fatalf("CheckpointFailures = %d, want 1", got)
			}
			if d.LastLSN() != lsnBefore {
				t.Fatalf("failed checkpoint moved the log: LastLSN %d -> %d", lsnBefore, d.LastLSN())
			}

			// The engine shrugs it off: writes still work (a query added and
			// removed again leaves the candidate set unchanged), and a hard
			// kill recovers everything from the old checkpoint + WAL suffix.
			q := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 0}, [][3]int{{0, 1, 9}})
			qid, err := d.AddQuery(q)
			if err != nil {
				t.Fatalf("write after failed checkpoint: %v", err)
			}
			if err := d.RemoveQuery(qid); err != nil {
				t.Fatalf("write after failed checkpoint: %v", err)
			}
			if err := d.Crash(); err != nil {
				t.Fatal(err)
			}
			recovered := openDurable(t, dir, 1, DurableOptions{Fsync: wal.SyncNever})
			defer recovered.Close()
			want := expectedCandidates(t, 1)
			if got := recovered.Candidates(); !pairsEqual(got, want[len(want)-1]) {
				t.Fatalf("recovered candidates %v, want %v", got, want[len(want)-1])
			}
			// The next checkpoint (fault disarmed) succeeds.
			if err := recovered.Checkpoint(); err != nil {
				t.Fatalf("checkpoint after disarm: %v", err)
			}
		})
	}
}
