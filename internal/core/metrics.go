package core

import (
	"time"

	"nntstream/internal/obs"
)

// EngineMetrics bundles the registry instruments a Monitor or ShardedMonitor
// records into, one observation per StepAll timestamp. All instruments share
// the nntstream_engine_ prefix.
type EngineMetrics struct {
	// ApplySeconds is the per-timestamp latency of the filter-apply phase
	// (every changed stream's Apply call; for the sharded engine, the
	// wall-clock time of the parallel fan-out).
	ApplySeconds *obs.Histogram
	// CollectSeconds is the per-timestamp latency of candidate collection.
	CollectSeconds *obs.Histogram
	// Timestamps counts StepAll rounds.
	Timestamps *obs.Counter
	// CandidatePairs counts reported pairs summed over all rounds.
	CandidatePairs *obs.Counter
	// CandidateRatio is the run-averaged fraction of (stream, query) pairs
	// reported as candidates — the paper's "candidate size" metric.
	CandidateRatio *obs.Gauge
	// Streams and Queries mirror the current workload size.
	Streams *obs.Gauge
	// Queries gauges the registered pattern count.
	Queries *obs.Gauge
}

// NewEngineMetrics registers the engine instruments in r. Calling it twice
// with the same registry returns instruments backed by the same state.
func NewEngineMetrics(r *obs.Registry) *EngineMetrics {
	return &EngineMetrics{
		ApplySeconds: r.Histogram("nntstream_engine_apply_seconds",
			"Per-timestamp filter apply latency in seconds.", nil),
		CollectSeconds: r.Histogram("nntstream_engine_collect_seconds",
			"Per-timestamp candidate collection latency in seconds.", nil),
		Timestamps: r.Counter("nntstream_engine_timestamps_total",
			"Number of StepAll rounds processed."),
		CandidatePairs: r.Counter("nntstream_engine_candidate_pairs_total",
			"Candidate pairs reported, summed over all rounds."),
		CandidateRatio: r.Gauge("nntstream_engine_candidate_ratio",
			"Run-averaged fraction of (stream, query) pairs reported as candidates."),
		Streams: r.Gauge("nntstream_engine_streams",
			"Registered stream count."),
		Queries: r.Gauge("nntstream_engine_queries",
			"Registered query count."),
	}
}

// observeStep records one StepAll round. A nil receiver is a no-op so the
// engines can call it unconditionally.
func (em *EngineMetrics) observeStep(apply, collect time.Duration, pairs int, st Stats, streams, queries int) {
	if em == nil {
		return
	}
	em.ApplySeconds.Observe(apply.Seconds())
	em.CollectSeconds.Observe(collect.Seconds())
	em.Timestamps.Inc()
	em.CandidatePairs.Add(int64(pairs))
	em.CandidateRatio.Set(st.CandidateRatio())
	em.Streams.Set(float64(streams))
	em.Queries.Set(float64(queries))
}
