package factor

import (
	"testing"

	"nntstream/internal/core"
	"nntstream/internal/graph"
	"nntstream/internal/npv"
)

// FuzzFactorSeal feeds arbitrary byte strings through a deterministic
// decoder into a query-vector set, runs discovery (plus post-seal churn and
// a reseal), and asserts the two contracts discovery must never break, no
// matter how degenerate the input:
//
//  1. Structural: every factor is a lower envelope of each member
//     (supp(f) ⊆ supp(u), f ≤ u entrywise) and every registered vector has
//     a decomposition.
//  2. Semantic: for every registered vector and every probe drawn from the
//     same vector pool, factored dominance ≡ full packed dominance.
func FuzzFactorSeal(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0, 9, 9, 9, 9, 2, 2, 2, 2})
	f.Add([]byte{255, 1, 255, 2, 255, 3, 0, 1, 0, 2, 0, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode: triples (query, dim, count) with tiny alphabets so
		// vectors collide and overlap often.
		vecs := make(map[Key]npv.Vector)
		for i := 0; i+2 < len(data); i += 3 {
			q := core.QueryID(data[i] % 8)
			d := npv.Dim(data[i+1] % 16)
			c := int32(data[i+2]%5) + 1
			k := Key{Query: q, Vertex: graph.VertexID(data[i] % 4)}
			if vecs[k] == nil {
				vecs[k] = make(npv.Vector)
			}
			vecs[k][d] = c
		}

		tbl := NewTable()
		tbl.SetMinSupport(2)
		tbl.SetMinDims(1)
		packed := make(map[Key]npv.PackedVector, len(vecs))
		var keys []Key
		for k, v := range vecs {
			p := npv.Pack(v)
			packed[k] = p
			keys = append(keys, k)
			tbl.Add(k, p)
		}
		tbl.Seal()
		checkTable(t, tbl, packed)

		// Churn: remove one query, add it back post-seal, then reseal.
		if len(keys) > 0 {
			victim := keys[0].Query
			tbl.RemoveQuery(victim)
			for k, p := range packed {
				if k.Query == victim {
					tbl.Add(k, p)
				}
			}
			checkTable(t, tbl, packed)
			tbl.Reseal()
			checkTable(t, tbl, packed)
		}
	})
}

// checkTable asserts the structural and semantic contracts over every
// registered vector, probing with the vector pool itself (pool members
// dominate each other often, exercising both verdicts).
func checkTable(t *testing.T, tbl *Table, packed map[Key]npv.PackedVector) {
	t.Helper()
	for k, u := range packed {
		dec, ok := tbl.Decomp(k)
		if !ok {
			t.Fatalf("key %v has no decomposition", k)
		}
		if !dec.Full.Equal(u) {
			t.Fatalf("key %v: decomp full %v != registered %v", k, dec.Full, u)
		}
		if dec.Factor != None {
			fv := tbl.Factor(dec.Factor)
			for i := 0; i < fv.Len(); i++ {
				if got := u.Get(fv.Dim(i)); got < fv.Count(i) {
					t.Fatalf("key %v: factor %v is not a lower envelope of %v", k, fv, u)
				}
			}
		}
		for _, p := range packed {
			full := p.Dominates(u)
			factored := p.Dominates(dec.Residual)
			if dec.Factor != None {
				factored = factored && p.Dominates(tbl.Factor(dec.Factor))
			}
			if full != factored {
				t.Fatalf("key %v probe %v: factored %v != full %v", k, p, factored, full)
			}
		}
	}
}
