package factor

import (
	"math/rand"
	"reflect"
	"testing"

	"nntstream/internal/core"
	"nntstream/internal/graph"
	"nntstream/internal/npv"
)

// randomVector draws a small vector with dims from a shared pool so that
// overlap actually occurs.
func randomVector(r *rand.Rand, maxDims int) npv.Vector {
	v := make(npv.Vector)
	n := 1 + r.Intn(maxDims)
	for i := 0; i < n; i++ {
		d := npv.Dim(r.Intn(12))
		v[d] = int32(1 + r.Intn(4))
	}
	return v
}

// perturb returns a copy of base with one entry changed, added, or removed —
// the template-with-variations shape factoring targets.
func perturb(r *rand.Rand, base npv.Vector) npv.Vector {
	v := base.Clone()
	switch r.Intn(3) {
	case 0: // change one entry
		for d := range v {
			v[d] += int32(1 + r.Intn(2))
			break
		}
	case 1: // add an entry
		v[npv.Dim(100+r.Intn(8))] = int32(1 + r.Intn(3))
	default: // drop one entry
		for d := range v {
			if len(v) > 1 {
				delete(v, d)
			}
			break
		}
	}
	return v
}

// buildTemplateTable registers nTemplates × perTemplate perturbed vectors
// and seals. Returns the table and the registered keys in registration
// order.
func buildTemplateTable(r *rand.Rand, nTemplates, perTemplate int) (*Table, []Key) {
	t := NewTable()
	t.SetMinSupport(2)
	t.SetMinDims(2)
	var keys []Key
	q := core.QueryID(0)
	for i := 0; i < nTemplates; i++ {
		base := randomVector(r, 6)
		for j := 0; j < perTemplate; j++ {
			k := Key{Query: q, Vertex: graph.VertexID(j)}
			vec := base
			if j > 0 {
				vec = perturb(r, base)
			}
			t.Add(k, npv.Pack(vec))
			keys = append(keys, k)
		}
		q++
	}
	t.Seal()
	return t, keys
}

// checkDecompExact is the soundness contract: for every registered vector,
// against any probe p, the factored test (factor dominated AND residual
// dominated) must agree with the full packed dominance — both directions.
func checkDecompExact(t *testing.T, tbl *Table, keys []Key, r *rand.Rand) {
	t.Helper()
	for _, k := range keys {
		dec, ok := tbl.Decomp(k)
		if !ok {
			t.Fatalf("key %v missing decomposition after seal", k)
		}
		for trial := 0; trial < 50; trial++ {
			// Half the probes are biased toward dominating: superset of the
			// full vector with inflated counts. Unbiased random probes almost
			// never dominate, which would leave the accept path untested.
			var p npv.PackedVector
			if trial%2 == 0 {
				sup := dec.Full.Unpack()
				for d := range sup {
					sup[d] += int32(r.Intn(2))
				}
				if r.Intn(2) == 0 && len(sup) > 0 {
					for d := range sup {
						sup[d]-- // dent one dimension: may break dominance
						break
					}
				}
				p = npv.Pack(sup)
			} else {
				p = npv.Pack(randomVector(r, 8))
			}
			full := p.Dominates(dec.Full)
			factored := p.Dominates(dec.Residual)
			if dec.Factor != None {
				factored = factored && p.Dominates(tbl.Factor(dec.Factor))
			}
			if full != factored {
				t.Fatalf("key %v: factored verdict %v != full verdict %v\nfull=%v\nfactor=%v\nresidual=%v\nprobe=%v",
					k, factored, full, dec.Full, dec.Factor, dec.Residual, p)
			}
		}
	}
}

// TestDecompositionExactness quickchecks factor short-circuit ≡ full packed
// dominance over randomized template workloads, including post-seal churn
// and reseal.
func TestDecompositionExactness(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(900 + seed))
		tbl, keys := buildTemplateTable(r, 3, 5)
		checkDecompExact(t, tbl, keys, r)

		// Post-seal churn: live additions match against existing factors.
		live := Key{Query: 100, Vertex: 0}
		tbl.Add(live, npv.Pack(randomVector(r, 6)))
		keys = append(keys, live)
		checkDecompExact(t, tbl, keys, r)

		// Remove a query, reseal, re-check everything that remains.
		tbl.RemoveQuery(keys[0].Query)
		var kept []Key
		for _, k := range keys {
			if k.Query != keys[0].Query {
				kept = append(kept, k)
			}
		}
		tbl.Reseal()
		checkDecompExact(t, tbl, kept, r)
	}
}

// TestDiscoveryFindsTemplateSharing pins that identical vectors registered
// under distinct queries actually coalesce into a factor with an empty
// residual — the payoff case the table exists for.
func TestDiscoveryFindsTemplateSharing(t *testing.T) {
	tbl := NewTable()
	tbl.SetMinSupport(2)
	tbl.SetMinDims(2)
	shared := npv.Pack(npv.Vector{1: 2, 2: 3, 3: 1})
	for q := core.QueryID(0); q < 4; q++ {
		tbl.Add(Key{Query: q, Vertex: 0}, shared)
	}
	loner := npv.Pack(npv.Vector{50: 7})
	tbl.Add(Key{Query: 9, Vertex: 0}, loner)
	tbl.Seal()

	if tbl.FactorCount() != 1 {
		t.Fatalf("FactorCount = %d; want 1", tbl.FactorCount())
	}
	if !tbl.Factor(0).Equal(shared) {
		t.Fatalf("factor = %v; want the shared vector %v", tbl.Factor(0), shared)
	}
	if got := tbl.Members(0); got != 4 {
		t.Fatalf("Members(0) = %d; want 4", got)
	}
	for q := core.QueryID(0); q < 4; q++ {
		dec, _ := tbl.Decomp(Key{Query: q, Vertex: 0})
		if dec.Factor != 0 || dec.Residual.Len() != 0 {
			t.Fatalf("query %d: decomp = {factor %d, residual %v}; want fully discharged", q, dec.Factor, dec.Residual)
		}
	}
	dec, _ := tbl.Decomp(Key{Query: 9, Vertex: 0})
	if dec.Factor != None || !dec.Residual.Equal(loner) {
		t.Fatalf("loner decomp = %+v; want unfactored", dec)
	}
}

// TestDiscoveryDeterministic pins that two tables fed the same vectors in
// different map-insertion orders discover identical factor sets.
func TestDiscoveryDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	vecs := make(map[Key]npv.PackedVector)
	base := randomVector(r, 5)
	for q := core.QueryID(0); q < 6; q++ {
		vecs[Key{Query: q, Vertex: 0}] = npv.Pack(perturb(r, base))
		vecs[Key{Query: q, Vertex: 1}] = npv.Pack(randomVector(r, 5))
	}
	build := func(order []Key) *Table {
		tbl := NewTable()
		tbl.SetMinSupport(2)
		tbl.SetMinDims(2)
		for _, k := range order {
			tbl.Add(k, vecs[k])
		}
		tbl.Seal()
		return tbl
	}
	var fwd, rev []Key
	for k := range vecs {
		fwd = append(fwd, k)
	}
	// Two arbitrary but different insertion orders.
	rev = append(rev, fwd...)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	a, b := build(fwd), build(rev)
	if a.FactorCount() != b.FactorCount() {
		t.Fatalf("factor counts differ: %d vs %d", a.FactorCount(), b.FactorCount())
	}
	for i := 0; i < a.FactorCount(); i++ {
		if !a.Factor(ID(i)).Equal(b.Factor(ID(i))) {
			t.Fatalf("factor %d differs: %v vs %v", i, a.Factor(ID(i)), b.Factor(ID(i)))
		}
	}
	for k := range vecs {
		da, _ := a.Decomp(k)
		db, _ := b.Decomp(k)
		if da.Factor != db.Factor || !da.Residual.Equal(db.Residual) {
			t.Fatalf("decomp of %v differs: %+v vs %+v", k, da, db)
		}
	}
}

// TestChurnLifecycle covers epochs, ShouldReseal, and membership teardown
// under add/remove churn — the registration-audit shape of the PR 6 tests.
func TestChurnLifecycle(t *testing.T) {
	tbl := NewTable()
	tbl.SetMinSupport(2)
	tbl.SetMinDims(2)
	shared := npv.Pack(npv.Vector{1: 2, 2: 3})
	for q := core.QueryID(0); q < 4; q++ {
		tbl.Add(Key{Query: q, Vertex: 0}, shared)
	}
	tbl.Seal()
	if tbl.FactorCount() != 1 || tbl.Members(0) != 4 {
		t.Fatalf("after seal: factors=%d members=%d", tbl.FactorCount(), tbl.Members(0))
	}
	fe := tbl.FactorEpoch()

	// A matching live addition joins the factor without a reseal.
	tbl.Add(Key{Query: 10, Vertex: 0}, shared)
	if tbl.Members(0) != 5 {
		t.Fatalf("live add: members = %d; want 5", tbl.Members(0))
	}
	if tbl.FactorEpoch() != fe {
		t.Fatal("live add must not move the factor epoch")
	}
	dec, _ := tbl.Decomp(Key{Query: 10, Vertex: 0})
	if dec.Factor != 0 {
		t.Fatalf("live add decomp factor = %d; want 0", dec.Factor)
	}

	// Removals decay membership; enough churn arms ShouldReseal.
	for q := core.QueryID(0); q < 4; q++ {
		if !tbl.RemoveQuery(q) {
			t.Fatalf("RemoveQuery(%d) found nothing", q)
		}
	}
	if tbl.Members(0) != 1 || tbl.VectorCount() != 1 {
		t.Fatalf("after removals: members=%d vectors=%d", tbl.Members(0), tbl.VectorCount())
	}
	if !tbl.ShouldReseal() {
		t.Fatal("churn of 5 on a 1-vector table must arm ShouldReseal")
	}
	if !tbl.MaybeReseal() {
		t.Fatal("MaybeReseal must fire when armed")
	}
	if tbl.FactorEpoch() == fe {
		t.Fatal("reseal must move the factor epoch")
	}
	// One survivor cannot reach MinSupport: no factors remain, survivor
	// unfactored.
	if tbl.FactorCount() != 0 {
		t.Fatalf("after reseal: %d factors; want 0", tbl.FactorCount())
	}
	dec, _ = tbl.Decomp(Key{Query: 10, Vertex: 0})
	if dec.Factor != None {
		t.Fatalf("survivor decomp factor = %d; want None", dec.Factor)
	}

	// Full teardown.
	tbl.RemoveQuery(10)
	if tbl.VectorCount() != 0 {
		t.Fatalf("VectorCount = %d after removing everything", tbl.VectorCount())
	}
}

// TestMemoAgainstSpace drives a Memo from a live npv.Space the way the
// filters do — Space mutated through its nnt.Observer interface, SealDirty
// feeding ApplyDeltas — and checks every memoized verdict against direct
// kernel evaluation, across vector growth, change, and retirement.
func TestMemoAgainstSpace(t *testing.T) {
	// Two distinct dimensions, built the way the forest reports tree edges.
	d1 := npv.NewDim(1, 0, 0, 1)
	d2 := npv.NewDim(1, 0, 0, 2)
	tbl := NewTable()
	tbl.SetMinSupport(2)
	tbl.SetMinDims(1)
	fv := npv.Pack(npv.Vector{d1: 2, d2: 1})
	tbl.Add(Key{Query: 0, Vertex: 0}, fv)
	tbl.Add(Key{Query: 1, Vertex: 0}, fv)
	tbl.Seal()
	if tbl.FactorCount() != 1 {
		t.Fatalf("FactorCount = %d; want 1", tbl.FactorCount())
	}

	space := npv.NewSpace()
	space.EnablePacking()
	memo := NewMemo(tbl)

	step := func(mut func()) {
		t.Helper()
		mut()
		memo.ApplyDeltas(space.SealDirty())
		// Every live vertex's memo bit must equal the direct verdict.
		space.PackedVectors(func(v graph.VertexID, p npv.PackedVector) bool {
			want := p.Dominates(fv)
			if got := memo.Has(v, 0); got != want {
				t.Fatalf("vertex %d: memo=%v direct=%v (vector %v)", v, got, want, p)
			}
			return true
		})
	}

	step(func() {
		space.TreeAdded(7, 0)
		space.TreeEdgeAdded(7, 1, 0, 0, 1) // 7: d1=1, below the factor's 2
		space.TreeAdded(8, 0)
		space.TreeEdgeAdded(8, 1, 0, 0, 1)
		space.TreeEdgeAdded(8, 1, 0, 0, 1) // 8: d1=2, still missing d2
	})
	if memo.Has(7, 0) || memo.Has(8, 0) {
		t.Fatal("partial vectors must not dominate the factor")
	}
	step(func() {
		space.TreeEdgeAdded(8, 1, 0, 0, 2) // 8: d2=1 → dominates {d1:2, d2:1}
	})
	if !memo.Has(8, 0) {
		t.Fatal("vertex 8 dominates the factor; memo bit missing")
	}
	step(func() {
		space.TreeEdgeRemoved(8, 1, 0, 0, 1) // 8: d1 drops to 1 → below
	})
	if memo.Has(8, 0) {
		t.Fatal("vertex 8 no longer dominates; memo bit stale")
	}
	// Retirement: the whole tree goes away → memo entry deleted.
	step(func() {
		space.TreeRemoved(7)
	})
	if memo.Has(7, 0) {
		t.Fatal("retired vertex kept a memo bit")
	}
}

// TestMemoFlipCallback pins the onFlip contract DSC's counters depend on:
// exactly one callback per changed verdict, with the new value.
func TestMemoFlipCallback(t *testing.T) {
	tbl := NewTable()
	tbl.SetMinSupport(2)
	tbl.SetMinDims(1)
	fv := npv.Pack(npv.Vector{1: 2})
	tbl.Add(Key{Query: 0, Vertex: 0}, fv)
	tbl.Add(Key{Query: 1, Vertex: 0}, fv)
	tbl.Seal()
	memo := NewMemo(tbl)

	var got []bool
	onFlip := func(f ID, now bool) {
		if f != 0 {
			t.Fatalf("flip of unexpected factor %d", f)
		}
		got = append(got, now)
	}
	up := npv.Pack(npv.Vector{1: 3})
	down := npv.Pack(npv.Vector{1: 1})

	memo.Update(5, up, true, onFlip)
	memo.Update(5, up, true, onFlip)   // no change → no flip
	memo.Update(5, down, true, onFlip) // drops below
	memo.Update(5, up, true, onFlip)
	memo.Update(5, up, false, onFlip) // retired while set
	if want := []bool{true, false, true, false}; !reflect.DeepEqual(got, want) {
		t.Fatalf("flip sequence = %v; want %v", got, want)
	}
}

// TestMemoRebuildAfterReseal covers the reseal path: factor IDs are
// reassigned, the memo stamp goes stale, Rebuild re-derives the bits from
// the sealed space.
func TestMemoRebuildAfterReseal(t *testing.T) {
	d1 := npv.NewDim(1, 0, 0, 1)
	tbl := NewTable()
	tbl.SetMinSupport(2)
	tbl.SetMinDims(1)
	fv := npv.Pack(npv.Vector{d1: 1})
	for q := core.QueryID(0); q < 3; q++ {
		tbl.Add(Key{Query: q, Vertex: 0}, fv)
	}
	tbl.Seal()

	space := npv.NewSpace()
	space.EnablePacking()
	space.TreeAdded(3, 0)
	space.TreeEdgeAdded(3, 1, 0, 0, 1)
	memo := NewMemo(tbl)
	memo.ApplyDeltas(space.SealDirty())
	if !memo.Has(3, 0) {
		t.Fatal("setup: memo bit expected")
	}

	tbl.Reseal()
	if memo.Stamp() == tbl.FactorEpoch() {
		t.Fatal("stamp must be stale after reseal")
	}
	memo.Rebuild(space)
	if memo.Stamp() != tbl.FactorEpoch() {
		t.Fatal("Rebuild must refresh the stamp")
	}
	if !memo.Has(3, 0) {
		t.Fatal("rebuilt memo lost the verdict")
	}
}

// TestStatsCounters smoke-checks the process-global counters move on the
// expected paths.
func TestStatsCounters(t *testing.T) {
	e0, l0, r0 := Counters()
	tbl := NewTable()
	tbl.SetMinSupport(2)
	tbl.SetMinDims(1)
	fv := npv.Pack(npv.Vector{1: 5})
	tbl.Add(Key{Query: 0, Vertex: 0}, fv)
	tbl.Add(Key{Query: 1, Vertex: 0}, fv)
	tbl.Seal()
	memo := NewMemo(tbl)
	memo.Update(1, npv.Pack(npv.Vector{1: 1}), true, nil)
	dec, _ := tbl.Decomp(Key{Query: 0, Vertex: 0})
	p := npv.Pack(npv.Vector{1: 1})
	if memo.Dominated(1, p, dec) {
		t.Fatal("probe below the factor must be rejected")
	}
	e1, l1, r1 := Counters()
	if e1 <= e0 || l1 <= l0 || r1 <= r0 {
		t.Fatalf("counters did not advance: evals %d→%d lookups %d→%d rejects %d→%d", e0, e1, l0, l1, r0, r1)
	}
}
