package factor

import (
	"nntstream/internal/graph"
	"nntstream/internal/npv"
)

// Memo caches per-(vertex, factor) dominance verdicts for one stream
// against one Table. Bit f of bits[v] is set iff stream vertex v's packed
// NPV currently dominates factor f's sub-vector.
//
// The memo follows the same epoch discipline as the packed-vector cache it
// reads: it mutates only inside the per-stream maintenance stage of a
// timestamp (ApplyDeltas, fed by Space.SealDirty) and at query-churn
// rebuilds, and it is read-only during the join pool's per-(stream, query)
// fan-out — so concurrent Has/Dominated probes need no locking. Stamp
// tracks the table's factor epoch; a reseal obligates the owner to call
// Rebuild before the next evaluation.
type Memo struct {
	tbl   *Table
	bits  map[graph.VertexID][]uint64
	stamp uint64
}

// NewMemo returns an empty memo over t. The table need not be sealed yet;
// Rebuild or the first ApplyDeltas will populate against the sealed set.
func NewMemo(t *Table) *Memo {
	return &Memo{tbl: t, bits: make(map[graph.VertexID][]uint64), stamp: t.FactorEpoch()}
}

// Stamp returns the table factor epoch the memo was last built against.
func (m *Memo) Stamp() uint64 { return m.stamp }

// Has reports the memoized verdict: does vertex v's vector dominate factor
// f? Vertices with no entry (empty or untouched vectors) dominate nothing.
//
//nnt:hotpath
func (m *Memo) Has(v graph.VertexID, f ID) bool {
	w := m.bits[v]
	i := int(f)
	if i>>6 >= len(w) {
		return false
	}
	return w[i>>6]&(1<<(uint(i)&63)) != 0
}

// Dominated is the factored dominance test on the hot path: p is stream
// vertex v's (sealed) packed vector, u a registered decomposition. The O(1)
// kernel rejects run first against the full vector — most probes die there
// in both the factored and unfactored paths, and the memo's map access must
// not be charged to them. Survivors read the memoized factor bit (settling
// the shared prefix without a merge) and only then pay a packed merge over
// the residual. For unfactored decompositions the test degenerates to the
// plain kernel, so a nil memo (factors disabled) is safe as long as every
// decomposition passed in is Unfactored.
//
//nnt:hotpath
func (m *Memo) Dominated(v graph.VertexID, p npv.PackedVector, u Factored) bool {
	if u.Factor != None {
		if !p.CanDominate(u.Full) {
			return false
		}
		lookupsTotal.Add(1)
		if !m.Has(v, u.Factor) {
			rejectsTotal.Add(1)
			return false
		}
	}
	return p.Dominates(u.Residual)
}

// DominatorsOf calls fn for every vertex whose memoized verdict for factor
// f is true, until fn returns false. Because factors are lower envelopes,
// this is a complete candidate set for "which vertices might dominate a
// member of f": a vertex with a clear (or absent) bit provably dominates no
// vector factored by f, so a probe loop over DominatorsOf visits strictly
// fewer vertices than a scan of the space — the higher the sharing, the
// fewer factors, the more selective each bit. Iteration order is
// unspecified; callers must not let it shape their answers beyond
// existence (the join probes only ask "is there any dominator").
//
//nnt:hotpath
func (m *Memo) DominatorsOf(f ID, fn func(v graph.VertexID) bool) {
	wi, mask := int(f)>>6, uint64(1)<<(uint(f)&63)
	for v, w := range m.bits {
		if wi < len(w) && w[wi]&mask != 0 {
			if !fn(v) {
				return
			}
		}
	}
}

// Update recomputes vertex v's verdict bits against every factor of the
// table — the once-per-(vertex, factor, timestamp) evaluation. present is
// false when v's vector disappeared (all verdicts clear). onFlip, when
// non-nil, is invoked for every factor whose verdict changed, with the new
// value — DSC turns these flips into dominant-counter updates. Steady-state
// the word slice is reused in place, so the call does not allocate.
//
//nnt:hotpath
func (m *Memo) Update(v graph.VertexID, p npv.PackedVector, present bool, onFlip func(f ID, now bool)) {
	old := m.bits[v]
	if !present {
		if old == nil {
			return
		}
		if onFlip != nil {
			for i := range m.tbl.factors {
				if old[i>>6]&(1<<(uint(i)&63)) != 0 {
					onFlip(ID(i), false)
				}
			}
		}
		delete(m.bits, v)
		return
	}
	nf := len(m.tbl.factors)
	if nf == 0 {
		return
	}
	words := (nf + 63) >> 6
	w := old
	if len(w) != words {
		//lint:ignore hotalloc first touch of a vertex sizes its word slice; steady-state updates reuse it in place
		w = make([]uint64, words)
		m.bits[v] = w
	}
	evalsTotal.Add(int64(nf))
	for i, fv := range m.tbl.factors {
		var bit uint64
		if p.Dominates(fv) {
			bit = 1
		}
		wi, sh := i>>6, uint(i)&63
		prev := w[wi] >> sh & 1
		if prev != bit {
			w[wi] ^= 1 << sh
			if onFlip != nil {
				onFlip(ID(i), bit == 1)
			}
		}
	}
}

// ApplyDeltas folds one timestamp's sealed dirty set into the memo: each
// dirty vertex re-evaluates every factor exactly once. Runs in the
// per-stream maintenance stage, before any per-query test reads the memo.
func (m *Memo) ApplyDeltas(deltas []npv.DirtyDelta) {
	for _, dl := range deltas {
		m.Update(dl.Vertex, dl.New, dl.HasNew, nil)
	}
}

// Rebuild recomputes the whole memo from the space's sealed vectors —
// required after the table reseals (factor IDs are reassigned) and after
// restoring a stream from a snapshot. The space must have no dirty
// vertices (every filter path seals before returning).
func (m *Memo) Rebuild(space *npv.Space) {
	clear(m.bits)
	m.stamp = m.tbl.FactorEpoch()
	if len(m.tbl.factors) == 0 {
		return
	}
	space.PackedVectors(func(v graph.VertexID, p npv.PackedVector) bool {
		m.Update(v, p, true, nil)
		return true
	})
}
