// Package factor amortizes NPV dominance work across overlapping queries.
//
// The realistic many-tenant regime for a continuous-monitoring filter is
// thousands of registered queries that share structure — templates with
// small variations. The query dominance index (internal/qindex) already
// prunes *which* queries a timestamp must re-evaluate, but every surviving
// evaluation still pays for its whole packed vector, so ten variants of one
// template re-merge the same template body ten times per stream vertex.
// Following the shared sub-pattern decomposition of Choudhury et al.
// ("Large-Scale Continuous Subgraph Queries on Streams", StreamWorks), this
// package factors the registered query vectors into shared sub-vectors and
// evaluates each shared factor once per (vertex, timestamp):
//
//   - Discovery mines the live query set for entries ((dimension, count)
//     pairs) carried by at least MinSupport registered vectors, then
//     greedily clusters vectors on their popular entries. Each surviving
//     cluster's lower envelope — the dimensions present in every member,
//     at the member-minimum count — becomes one factor.
//
//   - Every registered vector u splits into at most one factor f plus a
//     residual r: r keeps exactly the entries of u not discharged by f
//     (dimensions outside supp(f), plus dimensions where u exceeds f).
//     Since supp(f) ⊆ supp(u) and f ≤ u entrywise,
//
//     p dominates u  ⟺  p dominates f  AND  p dominates r
//
//     — the factor verdict is a necessary condition (a vector cannot be
//     dominated unless its factors are) and together with the residual it
//     is sufficient, so the factored test is bit-identical to the full
//     packed merge.
//
//   - A per-stream Memo caches the per-(vertex, factor) verdicts. At each
//     timestamp seal the dirty vertices re-evaluate every factor exactly
//     once on the packed kernel; between seals the memo is immutable, so
//     the join pool's fan-out reads it race-free and the per-query hot
//     path is one bit probe plus a (usually tiny) residual merge.
//
// Lifecycle mirrors the query dominance index: registration appends
// cheaply, Seal runs discovery once when the first stream arrives, and
// post-seal query churn matches new vectors against the existing factor
// set in place (epoch bump, memos stay valid because the factor set is
// unchanged). When churn accumulates past half the registered set the
// table re-discovers from scratch (Reseal), which bumps the factor epoch
// and obligates the owner to rebuild its memos.
package factor

import (
	"sort"
	"sync/atomic"

	"nntstream/internal/core"
	"nntstream/internal/graph"
	"nntstream/internal/npv"
)

// ID names one discovered factor within a Table's current factor epoch.
type ID int32

// None marks an unfactored vector.
const None ID = -1

// Key identifies one registered query vector: the owning query plus a
// vector identity within it (a query-graph vertex for DSC, a slice position
// for NL and Skyline's maximal sets — the same convention as qindex.Key).
type Key struct {
	Query  core.QueryID
	Vertex graph.VertexID
}

// Factored is the evaluation-time decomposition of one registered vector.
// Residual always holds the undischarged entries; an unfactored vector has
// Factor == None and Residual == Full, so the factored dominance test
// degenerates to the plain packed merge.
type Factored struct {
	Full     npv.PackedVector
	Factor   ID
	Residual npv.PackedVector
}

// Unfactored wraps p as its own trivial decomposition.
func Unfactored(p npv.PackedVector) Factored {
	return Factored{Full: p, Factor: None, Residual: p}
}

// Shared-factor telemetry: factor verdicts computed at seal time, factor
// bit probes on the per-query hot path, and how many of those probes
// rejected without touching the residual merge. Process-global atomics (the
// memo is read and sealed inside the join pool's fan-out, and a sharded
// engine holds one table per shard); Stats exposes them as an obs.Collector
// on /v1/metrics.
var (
	evalsTotal   atomic.Int64
	lookupsTotal atomic.Int64
	rejectsTotal atomic.Int64
)

// Stats is an obs.Collector (satisfied structurally; factor does not import
// obs) reporting the package's process-global counters.
type Stats struct{}

// CollectMetrics emits the seal-time evaluation and hot-path probe totals.
func (Stats) CollectMetrics(emit func(name string, value float64)) {
	emit("nntstream_factor_evals_total", float64(evalsTotal.Load()))
	emit("nntstream_factor_lookups_total", float64(lookupsTotal.Load()))
	emit("nntstream_factor_short_rejects_total", float64(rejectsTotal.Load()))
}

// Counters returns the raw totals behind Stats, for tests.
func Counters() (evals, lookups, rejects int64) {
	return evalsTotal.Load(), lookupsTotal.Load(), rejectsTotal.Load()
}

// Table is the shared-factor table over one filter's registered query
// vectors. The zero value is not ready; use NewTable. Mutation only happens
// on the engines' serialized registration path; between mutations the table
// is immutable, so the join pool's fan-out reads it race-free.
type Table struct {
	minSupport  int // vectors that must share entries/a cluster to pay off
	minDims     int // minimum factor support size worth a bit probe
	maxClusters int // discovery work bound: vectors beyond it stay unfactored

	vecs   map[Key]npv.PackedVector
	decomp map[Key]Factored

	factors []npv.PackedVector // by ID; rebuilt only at Seal/Reseal
	members []int              // registered vectors currently on each factor

	sealed bool
	epoch  uint64 // bumped on every post-seal mutation (like qindex.Epoch)
	// factorEpoch stamps the factor set itself: it moves only at Seal and
	// Reseal, when IDs are reassigned and every Memo must be rebuilt.
	factorEpoch uint64
	// churn counts vector adds and removes since the last discovery; it
	// drives ShouldReseal.
	churn int
}

// Defaults for NewTable; see the setters for the trade-offs.
const (
	DefaultMinSupport  = 4
	DefaultMinDims     = 4
	defaultMaxClusters = 256
)

// NewTable returns an empty, unsealed table with default thresholds.
func NewTable() *Table {
	return &Table{
		minSupport:  DefaultMinSupport,
		minDims:     DefaultMinDims,
		maxClusters: defaultMaxClusters,
		vecs:        make(map[Key]npv.PackedVector),
		decomp:      make(map[Key]Factored),
	}
}

// SetMinSupport sets the sharing threshold: an entry is "popular" — and a
// cluster becomes a factor — only when at least k registered vectors carry
// it. Lower values factor more aggressively; below 2 sharing cannot pay.
// Must be called before Seal.
func (t *Table) SetMinSupport(k int) {
	if t.sealed {
		panic("factor: SetMinSupport after Seal")
	}
	if k < 2 {
		k = 2
	}
	t.minSupport = k
}

// SetMinDims sets the smallest factor support size worth a memo probe.
// Must be called before Seal.
func (t *Table) SetMinDims(d int) {
	if t.sealed {
		panic("factor: SetMinDims after Seal")
	}
	if d < 1 {
		d = 1
	}
	t.minDims = d
}

// Sealed reports whether discovery has run.
func (t *Table) Sealed() bool { return t.sealed }

// Epoch counts seal generations: the one-time Seal plus every post-seal
// mutation, exactly like qindex.Index.Epoch.
func (t *Table) Epoch() uint64 { return t.epoch }

// FactorEpoch stamps the current factor set. Memos built under a different
// factor epoch are invalid and must be rebuilt.
func (t *Table) FactorEpoch() uint64 { return t.factorEpoch }

// FactorCount reports the number of discovered factors.
func (t *Table) FactorCount() int { return len(t.factors) }

// VectorCount reports the number of registered vectors.
func (t *Table) VectorCount() int { return len(t.vecs) }

// Factor returns factor f's sub-vector. The result shares the table's
// backing slices and must not be mutated.
func (t *Table) Factor(f ID) npv.PackedVector { return t.factors[f] }

// Members reports how many registered vectors currently reference f.
func (t *Table) Members(f ID) int { return t.members[f] }

// Decomp returns k's decomposition. ok is false before Seal and for
// unregistered keys.
func (t *Table) Decomp(k Key) (Factored, bool) {
	d, ok := t.decomp[k]
	return d, ok
}

// Add registers one query vector under k. Before Seal the vector is only
// stored (discovery runs once over the whole set); afterwards it is matched
// against the existing factors immediately and the epoch advances.
// Registering the same key twice is a caller bug and is not detected here —
// filters already reject duplicate query IDs.
func (t *Table) Add(k Key, p npv.PackedVector) {
	t.vecs[k] = p
	t.churn++
	if !t.sealed {
		return
	}
	t.decomp[k] = t.match(p)
	if f := t.decomp[k].Factor; f != None {
		t.members[f]++
	}
	t.epoch++
}

// RemoveQuery drops every vector of q and reports whether q was registered.
func (t *Table) RemoveQuery(q core.QueryID) bool {
	found := false
	for k := range t.vecs {
		if k.Query != q {
			continue
		}
		found = true
		t.churn++
		if d, ok := t.decomp[k]; ok && d.Factor != None {
			t.members[d.Factor]--
		}
		delete(t.vecs, k)
		delete(t.decomp, k)
	}
	if found && t.sealed {
		t.epoch++
	}
	return found
}

// Seal runs factor discovery over the registered vectors and marks the
// table readable. The first call does the work; later calls are no-ops, so
// filters may call it unconditionally when the first stream arrives.
func (t *Table) Seal() {
	if t.sealed {
		return
	}
	t.sealed = true
	t.discover()
}

// ShouldReseal reports whether post-seal churn has accumulated far enough
// past the last discovery that the factor set is likely stale: at least
// MinSupport mutations, amounting to half the registered vectors. The
// thresholds only affect how much sharing the table finds, never verdicts.
func (t *Table) ShouldReseal() bool {
	return t.sealed && t.churn >= t.minSupport && 2*t.churn >= len(t.vecs)
}

// Reseal re-runs discovery over the current vector set, reassigning factor
// IDs. Every Memo built against this table is invalidated (FactorEpoch
// moves) and must be rebuilt by the owner.
func (t *Table) Reseal() {
	if !t.sealed {
		panic("factor: Reseal before Seal")
	}
	t.discover()
}

// MaybeReseal reseals when ShouldReseal holds, reporting whether it did.
func (t *Table) MaybeReseal() bool {
	if !t.ShouldReseal() {
		return false
	}
	t.Reseal()
	return true
}

// entryKey is one (dimension, count) pair — the unit of sharing.
type entryKey struct {
	d npv.Dim
	c int32
}

// cluster accumulates one candidate factor during discovery: the lower
// envelope (dims present in every member so far, at the member-minimum
// count) plus the member keys.
type cluster struct {
	dims   []npv.Dim
	counts []int32
	sig    uint64
	membs  []Key
}

// discover mines the registered vectors for shared factors and recomputes
// every decomposition. Deterministic: vectors are processed in sorted key
// order and clusters in creation order, so equal inputs always produce
// equal factor sets (the mapdeterm discipline).
func (t *Table) discover() {
	t.epoch++
	t.factorEpoch++
	t.churn = 0
	t.factors = nil
	t.members = nil
	clear(t.decomp)

	keys := make([]Key, 0, len(t.vecs))
	for k := range t.vecs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Query != keys[j].Query {
			return keys[i].Query < keys[j].Query
		}
		return keys[i].Vertex < keys[j].Vertex
	})

	// Pass 1: entry frequency over distinct vectors.
	freq := make(map[entryKey]int)
	for _, k := range keys {
		p := t.vecs[k]
		for i := 0; i < p.Len(); i++ {
			freq[entryKey{p.Dim(i), p.Count(i)}]++
		}
	}

	// Pass 2: greedy leader clustering on popular entries. A vector joins
	// the cluster with the largest dimension overlap, provided the overlap
	// covers at least MinDims dimensions and half of both sides — template
	// variants coalesce, unrelated queries with incidental overlap do not.
	// The signature popcount is a cheap upper-bound screen only; any
	// deterministic heuristic here is sound, because clustering decides how
	// much is shared, never what a verdict is.
	var clusters []*cluster
	for _, k := range keys {
		p := t.vecs[k]
		var dims []npv.Dim
		var counts []int32
		var sig uint64
		for i := 0; i < p.Len(); i++ {
			if freq[entryKey{p.Dim(i), p.Count(i)}] >= t.minSupport {
				dims = append(dims, p.Dim(i))
				counts = append(counts, p.Count(i))
				sig |= npv.SigBit(p.Dim(i))
			}
		}
		if len(dims) < t.minDims {
			continue
		}
		best, bestOv := -1, 0
		for ci, c := range clusters {
			if popcount64(sig&c.sig) == 0 {
				continue
			}
			ov := overlapDims(dims, counts, c)
			if ov >= t.minDims && 2*ov >= len(c.dims) && 2*ov >= len(dims) && ov > bestOv {
				best, bestOv = ci, ov
			}
		}
		if best >= 0 {
			clusters[best].merge(dims, counts, k)
		} else if len(clusters) < t.maxClusters {
			clusters = append(clusters, &cluster{dims: dims, counts: counts, sig: sig, membs: []Key{k}})
		}
	}

	// Pass 3: surviving clusters become factors; members decompose against
	// the final lower envelope, everything else stays unfactored.
	for _, c := range clusters {
		if len(c.membs) < t.minSupport || len(c.dims) < t.minDims {
			continue
		}
		id := ID(len(t.factors))
		t.factors = append(t.factors, packEntries(c.dims, c.counts))
		t.members = append(t.members, len(c.membs))
		for _, k := range c.membs {
			t.decomp[k] = t.decompose(t.vecs[k], id)
		}
	}
	for _, k := range keys {
		if _, ok := t.decomp[k]; !ok {
			t.decomp[k] = Unfactored(t.vecs[k])
		}
	}
}

// overlapDims counts the dimensions of (dims, counts) shared with c's
// current envelope, irrespective of count (the envelope takes minimums at
// merge time).
func overlapDims(dims []npv.Dim, counts []int32, c *cluster) int {
	i, j, ov := 0, 0, 0
	for i < len(dims) && j < len(c.dims) {
		switch {
		case dims[i] < c.dims[j]:
			i++
		case c.dims[j] < dims[i]:
			j++
		default:
			ov++
			i++
			j++
		}
	}
	return ov
}

// merge intersects c's envelope with (dims, counts), keeping shared
// dimensions at the minimum count, and records the member.
func (c *cluster) merge(dims []npv.Dim, counts []int32, k Key) {
	outD := c.dims[:0]
	outC := c.counts[:0]
	var sig uint64
	i, j := 0, 0
	for i < len(dims) && j < len(c.dims) {
		switch {
		case dims[i] < c.dims[j]:
			i++
		case c.dims[j] < dims[i]:
			j++
		default:
			cnt := counts[i]
			if c.counts[j] < cnt {
				cnt = c.counts[j]
			}
			outD = append(outD, c.dims[j])
			outC = append(outC, cnt)
			sig |= npv.SigBit(c.dims[j])
			i++
			j++
		}
	}
	c.dims, c.counts, c.sig = outD, outC, sig
	c.membs = append(c.membs, k)
}

// match finds the best existing factor for a post-seal vector: among the
// applicable factors (supp(f) ⊆ supp(p), f ≤ p entrywise) the one
// discharging the most entries exactly, requiring at least MinDims
// discharged; ties break toward the lowest ID. Unmatched vectors stay
// unfactored until the next reseal.
func (t *Table) match(p npv.PackedVector) Factored {
	best, bestDis := None, 0
	for id, fv := range t.factors {
		dis, ok := applicability(fv, p)
		if ok && dis >= t.minDims && dis > bestDis {
			best, bestDis = ID(id), dis
		}
	}
	if best == None {
		return Unfactored(p)
	}
	return t.decompose(p, best)
}

// applicability reports whether f can factor p (supp(f) ⊆ supp(p) with
// f ≤ p entrywise) and, when it can, how many entries it discharges
// exactly (equal counts).
func applicability(f, p npv.PackedVector) (discharged int, ok bool) {
	if f.Sig()&^p.Sig() != 0 || f.Len() > p.Len() {
		return 0, false
	}
	j := 0
	for i := 0; i < f.Len(); i++ {
		d := f.Dim(i)
		for j < p.Len() && p.Dim(j) < d {
			j++
		}
		if j == p.Len() || p.Dim(j) != d || p.Count(j) < f.Count(i) {
			return 0, false
		}
		if p.Count(j) == f.Count(i) {
			discharged++
		}
		j++
	}
	return discharged, true
}

// decompose splits p against factor id: the residual keeps every entry of
// p not discharged exactly by the factor (dimensions outside the factor's
// support, plus dimensions where p exceeds the envelope).
func (t *Table) decompose(p npv.PackedVector, id ID) Factored {
	fv := t.factors[id]
	res := make(npv.Vector, p.Len())
	for i := 0; i < p.Len(); i++ {
		d, c := p.Dim(i), p.Count(i)
		if fc := fv.Get(d); fc == 0 || c > fc {
			res[d] = c
		}
	}
	return Factored{Full: p, Factor: id, Residual: npv.Pack(res)}
}

// packEntries freezes a sorted (dims, counts) envelope into packed form.
func packEntries(dims []npv.Dim, counts []int32) npv.PackedVector {
	v := make(npv.Vector, len(dims))
	for i, d := range dims {
		v[d] = counts[i]
	}
	return npv.Pack(v)
}

// popcount64 is bits.OnesCount64 without the import.
func popcount64(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// CollectMetrics reports the table's structural gauges under the shared
// nntstream_factor_ prefix (an obs.Collector, satisfied structurally).
// Discharged entries measure the sharing the table actually bought: vector
// entries answered by a factor bit instead of a residual merge.
func (t *Table) CollectMetrics(emit func(name string, value float64)) {
	emit("nntstream_factor_factors", float64(len(t.factors)))
	emit("nntstream_factor_vectors", float64(len(t.vecs)))
	factored, discharged := 0, 0
	for _, d := range t.decomp {
		if d.Factor == None {
			continue
		}
		factored++
		discharged += d.Full.Len() - d.Residual.Len()
	}
	emit("nntstream_factor_vectors_factored", float64(factored))
	emit("nntstream_factor_discharged_entries", float64(discharged))
}
