package graphgrep

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nntstream/internal/core"
	"nntstream/internal/graph"
	"nntstream/internal/iso"
)

func buildGraph(t *testing.T, vlabels map[graph.VertexID]graph.Label, edges [][3]int) *graph.Graph {
	t.Helper()
	g := graph.New()
	for v, l := range vlabels {
		if err := g.AddVertex(v, l); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range edges {
		if err := g.AddEdge(graph.VertexID(e[0]), graph.VertexID(e[1]), graph.Label(e[2])); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestComputeSingleEdge(t *testing.T) {
	g := buildGraph(t, map[graph.VertexID]graph.Label{0: 1, 1: 2}, [][3]int{{0, 1, 7}})
	fp := Compute(g, 4)
	// Paths: [1], [2], [1,7,2], [2,7,1] → 4 keys, each count 1.
	if len(fp) != 4 {
		t.Fatalf("fingerprint has %d keys; want 4: %v", len(fp), fp)
	}
	if fp[pathKey([]graph.Label{1, 7, 2})] != 1 {
		t.Fatal("missing path 1-7-2")
	}
}

func TestComputeCountsMultiplicity(t *testing.T) {
	// Star with two identical leaves: path A→B occurs twice.
	g := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1, 2: 1},
		[][3]int{{0, 1, 5}, {0, 2, 5}})
	fp := Compute(g, 1)
	if got := fp[pathKey([]graph.Label{0, 5, 1})]; got != 2 {
		t.Fatalf("A→B count = %d; want 2", got)
	}
	if got := fp[pathKey([]graph.Label{1})]; got != 2 {
		t.Fatalf("vertex-label-1 count = %d; want 2", got)
	}
}

func TestComputeVertexSimple(t *testing.T) {
	// Triangle: with maxLen 3, vertex-simple paths cannot return to the
	// start, so the longest paths have 2 edges.
	g := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1, 2: 2},
		[][3]int{{0, 1, 0}, {1, 2, 0}, {2, 0, 0}})
	fp := Compute(g, 3)
	for k := range fp {
		if len(k) > 2*5 { // 3 vertices + 2 edges = 5 labels max
			t.Fatalf("path longer than 2 edges found: %d bytes", len(k))
		}
	}
}

func TestCovers(t *testing.T) {
	q := Fingerprint{"a": 1, "b": 2}
	g1 := Fingerprint{"a": 1, "b": 2, "c": 9}
	g2 := Fingerprint{"a": 1, "b": 1, "c": 9}
	g3 := Fingerprint{"b": 2}
	if !Covers(g1, q) {
		t.Fatal("g1 should cover q")
	}
	if Covers(g2, q) {
		t.Fatal("g2 undercounts b")
	}
	if Covers(g3, q) {
		t.Fatal("g3 misses a")
	}
	if !Covers(q, q) {
		t.Fatal("cover is reflexive")
	}
}

func TestFilterLifecycle(t *testing.T) {
	f := New(4)
	q := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1}, [][3]int{{0, 1, 0}})
	if err := f.AddQuery(0, q); err != nil {
		t.Fatal(err)
	}
	if err := f.AddQuery(0, q); err == nil {
		t.Fatal("duplicate query accepted")
	}
	g := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 2}, [][3]int{{0, 1, 0}})
	if err := f.AddStream(0, g); err != nil {
		t.Fatal(err)
	}
	if err := f.AddStream(0, g); err == nil {
		t.Fatal("duplicate stream accepted")
	}
	if got := f.Candidates(); len(got) != 0 {
		t.Fatalf("no candidates expected, got %v", got)
	}
	// Attach a B-labeled vertex: now the A-B query path exists.
	if err := f.Apply(0, graph.ChangeSet{graph.InsertOp(0, 0, 5, 1, 0)}); err != nil {
		t.Fatal(err)
	}
	got := f.Candidates()
	if len(got) != 1 || got[0] != (core.Pair{Stream: 0, Query: 0}) {
		t.Fatalf("Candidates = %v", got)
	}
	if err := f.Apply(9, nil); err == nil {
		t.Fatal("unknown stream accepted")
	}
}

// TestQuickNoFalseNegatives: if Q ⊆ G then GraphGrep keeps the pair.
func TestQuickNoFalseNegatives(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomConnected(r, 5+r.Intn(7), 3)
		q := randomSub(r, g)
		if q.VertexCount() == 0 {
			return true
		}
		if !iso.Contains(q, g) {
			return true
		}
		return Covers(Compute(g, 4), Compute(q, 4))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func randomConnected(r *rand.Rand, n, labels int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		_ = g.AddVertex(graph.VertexID(i), graph.Label(r.Intn(labels)))
	}
	for i := 1; i < n; i++ {
		_ = g.AddEdge(graph.VertexID(i), graph.VertexID(r.Intn(i)), graph.Label(r.Intn(2)))
	}
	for k := 0; k < n/2; k++ {
		i, j := r.Intn(n), r.Intn(n)
		if i != j {
			_ = g.AddEdge(graph.VertexID(i), graph.VertexID(j), graph.Label(r.Intn(2)))
		}
	}
	return g
}

func randomSub(r *rand.Rand, g *graph.Graph) *graph.Graph {
	ids := g.VertexIDs()
	start := ids[r.Intn(len(ids))]
	sub := graph.New()
	_ = sub.AddVertex(start, g.MustVertexLabel(start))
	want := 1 + r.Intn(g.EdgeCount())
	frontier := []graph.VertexID{start}
	for sub.EdgeCount() < want && len(frontier) > 0 {
		v := frontier[r.Intn(len(frontier))]
		es := g.NeighborsSorted(v)
		added := false
		for _, idx := range r.Perm(len(es)) {
			e := es[idx]
			if sub.HasEdge(e.U, e.V) {
				continue
			}
			_ = sub.AddVertex(e.V, g.MustVertexLabel(e.V))
			_ = sub.AddEdge(e.U, e.V, e.Label)
			frontier = append(frontier, e.V)
			added = true
			break
		}
		if !added {
			for i, u := range frontier {
				if u == v {
					frontier = append(frontier[:i], frontier[i+1:]...)
					break
				}
			}
		}
	}
	return sub
}
