// Package graphgrep implements the GraphGrep baseline [17]: graphs are
// summarized by path fingerprints — occurrence counts of every labeled
// simple path up to a length bound L — and a query can only be contained in
// a data graph whose fingerprint dominates the query's on every path key.
// The paper uses GraphGrep with L=4 as the fast-but-weak comparison point:
// path features alone admit many false positives (Figures 13–15).
//
// Paths here are vertex-simple (no repeated vertices), enumerated from
// every start vertex, so each undirected path is counted once per
// orientation — consistently for query and data graphs, which preserves the
// dominance argument: an embedding maps distinct simple paths to distinct
// simple paths with identical label strings.
package graphgrep

import (
	"encoding/binary"
	"fmt"

	"nntstream/internal/core"
	"nntstream/internal/graph"
)

// DefaultLength is the paper's GraphGrep setting: all paths up to length 4.
// (Longer settings were reported as too slow to index.)
const DefaultLength = 4

// Fingerprint maps an encoded label path to its occurrence count.
type Fingerprint map[string]int32

// pathKey encodes the label sequence v0 e1 v1 e2 v2 … as a byte string.
func pathKey(labels []graph.Label) string {
	buf := make([]byte, 2*len(labels))
	for i, l := range labels {
		binary.BigEndian.PutUint16(buf[2*i:], uint16(l))
	}
	return string(buf)
}

// Compute enumerates all vertex-simple paths of g with at most maxLen edges
// and returns their counts. Length-0 paths (single vertices) are included;
// they contribute per-label vertex counts.
func Compute(g *graph.Graph, maxLen int) Fingerprint {
	fp := make(Fingerprint)
	onPath := make(map[graph.VertexID]bool, maxLen+1)
	labels := make([]graph.Label, 0, 2*maxLen+1)

	var extend func(v graph.VertexID, depth int)
	extend = func(v graph.VertexID, depth int) {
		fp[pathKey(labels)]++
		if depth == maxLen {
			return
		}
		g.Neighbors(v, func(u graph.VertexID, el graph.Label) bool {
			if onPath[u] {
				return true
			}
			onPath[u] = true
			labels = append(labels, el, g.MustVertexLabel(u))
			extend(u, depth+1)
			labels = labels[:len(labels)-2]
			delete(onPath, u)
			return true
		})
	}

	g.Vertices(func(v graph.VertexID, l graph.Label) bool {
		onPath[v] = true
		labels = append(labels[:0], l)
		extend(v, 0)
		delete(onPath, v)
		return true
	})
	return fp
}

// Covers reports whether fingerprint g dominates fingerprint q: every path
// of q occurs in g at least as often. This is GraphGrep's filtering
// condition; it can never reject a true containment.
func Covers(g, q Fingerprint) bool {
	if len(g) < len(q) {
		return false
	}
	for k, c := range q {
		if g[k] < c {
			return false
		}
	}
	return true
}

// Filter adapts GraphGrep to the continuous setting: the fingerprint of a
// stream is recomputed whenever the stream changes (GraphGrep has no
// incremental maintenance story; recomputation is cheap enough that the
// paper still classifies it as a fast method).
type Filter struct {
	maxLen  int
	queries map[core.QueryID]Fingerprint
	streams map[core.StreamID]*graph.Graph
	fps     map[core.StreamID]Fingerprint
	verdict map[core.StreamID]map[core.QueryID]bool
}

var _ core.DynamicFilter = (*Filter)(nil)

// New returns a GraphGrep filter indexing paths up to maxLen edges.
func New(maxLen int) *Filter {
	if maxLen < 1 {
		panic(fmt.Sprintf("graphgrep: maxLen must be ≥ 1, got %d", maxLen))
	}
	return &Filter{
		maxLen:  maxLen,
		queries: make(map[core.QueryID]Fingerprint),
		streams: make(map[core.StreamID]*graph.Graph),
		fps:     make(map[core.StreamID]Fingerprint),
		verdict: make(map[core.StreamID]map[core.QueryID]bool),
	}
}

// Name implements core.Filter.
func (f *Filter) Name() string { return fmt.Sprintf("GraphGrep-L%d", f.maxLen) }

// AddQuery implements core.Filter.
func (f *Filter) AddQuery(id core.QueryID, q *graph.Graph) error {
	if _, ok := f.queries[id]; ok {
		return fmt.Errorf("graphgrep: duplicate query %d", id)
	}
	qfp := Compute(q, f.maxLen)
	f.queries[id] = qfp
	for sid, fp := range f.fps {
		f.verdict[sid][id] = Covers(fp, qfp)
	}
	return nil
}

// RemoveQuery implements core.DynamicFilter.
func (f *Filter) RemoveQuery(id core.QueryID) error {
	if _, ok := f.queries[id]; !ok {
		return fmt.Errorf("graphgrep: unknown query %d", id)
	}
	delete(f.queries, id)
	for _, m := range f.verdict {
		delete(m, id)
	}
	return nil
}

// AddStream implements core.Filter.
func (f *Filter) AddStream(id core.StreamID, g0 *graph.Graph) error {
	if _, ok := f.streams[id]; ok {
		return fmt.Errorf("graphgrep: duplicate stream %d", id)
	}
	f.streams[id] = g0.Clone()
	f.refresh(id)
	return nil
}

// Apply implements core.Filter.
func (f *Filter) Apply(id core.StreamID, cs graph.ChangeSet) error {
	g, ok := f.streams[id]
	if !ok {
		return fmt.Errorf("graphgrep: unknown stream %d", id)
	}
	if err := cs.Apply(g); err != nil {
		return err
	}
	f.refresh(id)
	return nil
}

func (f *Filter) refresh(id core.StreamID) {
	fp := Compute(f.streams[id], f.maxLen)
	f.fps[id] = fp
	m := make(map[core.QueryID]bool, len(f.queries))
	for qid, qfp := range f.queries {
		m[qid] = Covers(fp, qfp)
	}
	f.verdict[id] = m
}

// Candidates implements core.Filter.
func (f *Filter) Candidates() []core.Pair {
	var out []core.Pair
	for sid, m := range f.verdict {
		for qid, ok := range m {
			if ok {
				out = append(out, core.Pair{Stream: sid, Query: qid})
			}
		}
	}
	return core.SortPairs(out)
}
