// Chemical reaction monitoring — the paper's second motivating domain:
// during a reaction, compound structures change over time, and a chemist
// wants to know the moment a functional group (a subgraph pattern) can have
// formed in any of the evolving molecules.
//
// The example watches a batch of evolving molecules for two functional
// groups (a carboxyl-like motif and a six-ring), using the dominated-set-
// cover join; each reported candidate is confirmed exactly.
//
//	go run ./examples/chemistry
package main

import (
	"fmt"
	"log"
	"math/rand"

	"nntstream/internal/core"
	"nntstream/internal/datagen"
	"nntstream/internal/graph"
	"nntstream/internal/iso"
	"nntstream/internal/join"
)

// Atom labels match the chemical generator's convention: 0 plays carbon,
// 1 oxygen.
const (
	carbon = graph.Label(0)
	oxygen = graph.Label(1)
)

// Bond labels.
const (
	single = graph.Label(0)
	double = graph.Label(1)
)

func main() {
	// Pattern 1: carboxyl-like motif C(=O)–O–C.
	carboxyl := graph.New()
	mustAdd(carboxyl, 0, carbon)
	mustAdd(carboxyl, 1, oxygen)
	mustAdd(carboxyl, 2, oxygen)
	mustAdd(carboxyl, 3, carbon)
	mustEdge(carboxyl, 0, 1, double)
	mustEdge(carboxyl, 0, 2, single)
	mustEdge(carboxyl, 2, 3, single)

	// Pattern 2: a six-carbon ring.
	ring := graph.New()
	for i := graph.VertexID(0); i < 6; i++ {
		mustAdd(ring, i, carbon)
	}
	for i := graph.VertexID(0); i < 6; i++ {
		mustEdge(ring, i, (i+1)%6, single)
	}

	mon := core.NewMonitor(join.NewDSC(join.DefaultDepth))
	names := make(map[core.QueryID]string)
	for name, q := range map[string]*graph.Graph{"carboxyl": carboxyl, "six-ring": ring} {
		id, err := mon.AddQuery(q)
		if err != nil {
			log.Fatal(err)
		}
		names[id] = name
	}

	// A small batch of molecules from the AIDS-like generator.
	r := rand.New(rand.NewSource(11))
	cfg := datagen.ChemicalDefaults()
	cfg.NumGraphs = 6
	molecules := datagen.Chemical(cfg, r)
	ids := make([]core.StreamID, len(molecules))
	for i, m := range molecules {
		id, err := mon.AddStream(m)
		if err != nil {
			log.Fatal(err)
		}
		ids[i] = id
	}
	verifiers := make(map[core.QueryID]*iso.Matcher)
	for id := range names {
		verifiers[id] = iso.NewMatcher(mon.Query(id))
	}

	fmt.Printf("watching %d molecules for %d functional groups…\n", len(molecules), len(names))
	seen := make(map[core.Pair]bool)
	for t := 1; t <= 25; t++ {
		changes := make(map[core.StreamID]graph.ChangeSet)
		for i, sid := range ids {
			if cs := reactionStep(r, mon.StreamGraph(sid), i, t); len(cs) > 0 {
				changes[sid] = cs
			}
		}
		pairs, err := mon.StepAll(changes)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range pairs {
			if seen[p] {
				continue // only announce new formations
			}
			seen[p] = true
			verdict := "confirmed"
			if !verifiers[p.Query].Contains(mon.StreamGraph(p.Stream)) {
				verdict = "filter candidate only"
			}
			fmt.Printf("t=%2d  molecule %d can contain %-8s (%s)\n", t, p.Stream, names[p.Query], verdict)
		}
		// Forget pairs that no longer hold so re-formations are announced.
		cur := make(map[core.Pair]bool, len(pairs))
		for _, p := range pairs {
			cur[p] = true
		}
		for p := range seen {
			if !cur[p] {
				delete(seen, p)
			}
		}
	}
	st := mon.Stats()
	fmt.Printf("\n%d timestamps, avg filter time %v per timestamp\n", st.Timestamps, st.AvgTimePerTimestamp())
}

// reactionStep mutates a molecule: occasionally oxidize a bond (single →
// double via delete+insert), attach an oxygen, or close a ring.
func reactionStep(r *rand.Rand, m *graph.Graph, mol, t int) graph.ChangeSet {
	edges := m.Edges()
	if len(edges) == 0 {
		return nil
	}
	var cs graph.ChangeSet
	switch r.Intn(4) {
	case 0: // oxidize a random carbon: attach =O
		vids := m.VertexIDs()
		v := vids[r.Intn(len(vids))]
		if l, _ := m.VertexLabel(v); l == carbon {
			next := vids[len(vids)-1] + 1
			cs = append(cs, graph.InsertOp(v, carbon, next, oxygen, double))
		}
	case 1: // esterify: attach –O–C chain
		vids := m.VertexIDs()
		v := vids[r.Intn(len(vids))]
		if l, _ := m.VertexLabel(v); l == carbon {
			next := vids[len(vids)-1] + 1
			cs = append(cs,
				graph.InsertOp(v, carbon, next, oxygen, single),
				graph.InsertOp(next, oxygen, next+1, carbon, single))
		}
	case 2: // ring closure between two carbons
		vids := m.VertexIDs()
		a := vids[r.Intn(len(vids))]
		b := vids[r.Intn(len(vids))]
		la, _ := m.VertexLabel(a)
		lb, _ := m.VertexLabel(b)
		if a != b && la == carbon && lb == carbon && !m.HasEdge(a, b) {
			cs = append(cs, graph.InsertOp(a, carbon, b, carbon, single))
		}
	case 3: // bond cleavage
		e := edges[r.Intn(len(edges))]
		cs = append(cs, graph.DeleteOp(e.U, e.V))
	}
	return cs
}

func mustAdd(g *graph.Graph, v graph.VertexID, l graph.Label) {
	if err := g.AddVertex(v, l); err != nil {
		log.Fatal(err)
	}
}

func mustEdge(g *graph.Graph, u, v graph.VertexID, l graph.Label) {
	if err := g.AddEdge(u, v, l); err != nil {
		log.Fatal(err)
	}
}
