// Social proximity monitoring over Reality-Mining-like streams: device
// co-location graphs evolve as people move through a building, and an
// analyst watches for contact patterns — a dense meeting (triangle of
// same-role devices) and a broker pattern (one device bridging two roles).
//
// The example runs the full generated workload end to end with the skyline
// join (the method the paper finds fastest on the real dataset) and prints
// per-timestamp match counts plus final accuracy against exact matching.
//
//	go run ./examples/social
package main

import (
	"fmt"
	"log"
	"math/rand"

	"nntstream/internal/core"
	"nntstream/internal/datagen"
	"nntstream/internal/graph"
	"nntstream/internal/join"
)

func main() {
	r := rand.New(rand.NewSource(23))
	cfg := datagen.ProximityDefaults()
	cfg.Timestamps = 60

	// Three proximity streams derived from one canonical building trace.
	streams := datagen.ProximityStreams(cfg, 3, r)

	// Patterns: a triangle of label-0 devices (a small meeting of one
	// team) and a star where a label-1 device touches two label-2 ones
	// (a broker between roles).
	meeting := graph.New()
	for i := graph.VertexID(0); i < 3; i++ {
		must(meeting.AddVertex(i, 0))
	}
	must(meeting.AddEdge(0, 1, 0))
	must(meeting.AddEdge(1, 2, 0))
	must(meeting.AddEdge(2, 0, 0))

	broker := graph.New()
	must(broker.AddVertex(0, 1))
	must(broker.AddVertex(1, 2))
	must(broker.AddVertex(2, 2))
	must(broker.AddEdge(0, 1, 0))
	must(broker.AddEdge(0, 2, 0))

	mon := core.NewMonitor(join.NewSkyline(join.DefaultDepth))
	qMeeting, err := mon.AddQuery(meeting)
	check(err)
	qBroker, err := mon.AddQuery(broker)
	check(err)

	cursors := make([]*graph.Cursor, len(streams))
	ids := make([]core.StreamID, len(streams))
	for i, s := range streams {
		cursors[i] = graph.NewCursor(s)
		ids[i], err = mon.AddStream(s.Start)
		check(err)
	}

	fmt.Printf("monitoring %d proximity streams for 2 contact patterns…\n", len(streams))
	histogram := map[core.QueryID]int{}
	for t := 1; t < cfg.Timestamps; t++ {
		changes := map[core.StreamID]graph.ChangeSet{}
		for i, c := range cursors {
			if cs, ok := c.Next(); ok && len(cs) > 0 {
				changes[ids[i]] = cs
			}
		}
		pairs, err := mon.StepAll(changes)
		check(err)
		for _, p := range pairs {
			histogram[p.Query]++
		}
		if t%15 == 0 {
			fmt.Printf("t=%2d  %d candidate (stream, pattern) pairs\n", t, len(pairs))
		}
	}

	st := mon.Stats()
	fmt.Printf("\nmeeting pattern candidate at %d stream-timestamps, broker at %d\n",
		histogram[qMeeting], histogram[qBroker])
	fmt.Printf("avg filter time %v per timestamp, candidate ratio %.1f%%\n",
		st.AvgTimePerTimestamp(), 100*st.CandidateRatio())

	// Accuracy at the final timestamp.
	exact := mon.ExactPairs()
	fps := mon.FalsePositives()
	if missed := mon.VerifyNoFalseNegatives(); len(missed) != 0 {
		log.Fatalf("missed pairs: %v", missed)
	}
	fmt.Printf("final timestamp: %d exact matches, %d false positives, 0 false negatives\n",
		len(exact), len(fps))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
