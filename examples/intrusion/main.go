// Intrusion detection over network traffic streams — the paper's motivating
// application (Section I): attack signatures derived from domain knowledge
// are modeled as graph patterns, live traffic as graph streams, and every
// timestamp must report the possible signature matches without ever missing
// a real one.
//
// The example synthesizes traffic between labeled hosts (workstations, web
// servers, databases, a domain controller and an external address),
// registers three classic attack signatures, and runs the skyline join over
// the stream. Reported candidates are confirmed with exact isomorphism —
// the filter-then-verify pipeline the system is designed for: the cheap
// filter watches every timestamp, the expensive verifier runs only on the
// handful of reported pairs.
//
//	go run ./examples/intrusion
package main

import (
	"fmt"
	"log"
	"math/rand"

	"nntstream/internal/core"
	"nntstream/internal/graph"
	"nntstream/internal/iso"
	"nntstream/internal/join"
)

// Host roles (vertex labels) and traffic kinds (edge labels).
const (
	workstation = graph.Label(iota)
	webServer
	database
	domainCtrl
	external
)

const (
	httpTraffic = graph.Label(iota)
	sqlTraffic
	authTraffic
	exfilTraffic
)

func main() {
	queries := signatures()
	mon := core.NewMonitor(join.NewSkyline(join.DefaultDepth))
	names := make(map[core.QueryID]string)
	for name, q := range queries {
		id, err := mon.AddQuery(q)
		if err != nil {
			log.Fatal(err)
		}
		names[id] = name
	}

	r := rand.New(rand.NewSource(7))
	traffic := baseline(r)
	sid, err := mon.AddStream(traffic)
	if err != nil {
		log.Fatal(err)
	}
	verifiers := make(map[core.QueryID]*iso.Matcher)
	for id := range names {
		verifiers[id] = iso.NewMatcher(mon.Query(id))
	}

	fmt.Println("monitoring traffic for 3 attack signatures…")
	for t := 1; t <= 12; t++ {
		cs := trafficStep(r, t)
		pairs, err := mon.Step(sid, cs)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range pairs {
			// Filter hit — confirm before paging anyone.
			verdict := "CONFIRMED"
			if !verifiers[p.Query].Contains(mon.StreamGraph(p.Stream)) {
				verdict = "false positive, discarded"
			}
			fmt.Printf("t=%2d  ALERT %-22s (%s)\n", t, names[p.Query], verdict)
		}
	}
	st := mon.Stats()
	fmt.Printf("\nprocessed %d timestamps, avg filter time %v, %.1f%% of pairs reported\n",
		st.Timestamps, st.AvgTimePerTimestamp(), 100*st.CandidateRatio())
}

// signatures builds the three attack patterns.
func signatures() map[string]*graph.Graph {
	// Port scan: one workstation probing three web servers.
	scan := graph.New()
	mustAdd(scan, 0, workstation)
	for i := graph.VertexID(1); i <= 3; i++ {
		mustAdd(scan, i, webServer)
		mustEdge(scan, 0, i, httpTraffic)
	}

	// Lateral movement: workstation → web server → database → domain
	// controller, all over auth traffic.
	lateral := graph.New()
	mustAdd(lateral, 0, workstation)
	mustAdd(lateral, 1, webServer)
	mustAdd(lateral, 2, database)
	mustAdd(lateral, 3, domainCtrl)
	mustEdge(lateral, 0, 1, authTraffic)
	mustEdge(lateral, 1, 2, authTraffic)
	mustEdge(lateral, 2, 3, authTraffic)

	// Exfiltration triangle: compromised web server pulling from a
	// database while pushing to an external address.
	exfil := graph.New()
	mustAdd(exfil, 0, webServer)
	mustAdd(exfil, 1, database)
	mustAdd(exfil, 2, external)
	mustEdge(exfil, 0, 1, sqlTraffic)
	mustEdge(exfil, 0, 2, exfilTraffic)
	mustEdge(exfil, 1, 2, exfilTraffic)

	return map[string]*graph.Graph{
		"port-scan":        scan,
		"lateral-movement": lateral,
		"exfiltration":     exfil,
	}
}

// baseline builds the benign starting traffic graph: workstations browsing
// web servers, web servers querying databases.
func baseline(r *rand.Rand) *graph.Graph {
	g := graph.New()
	// Hosts 0-9 workstations, 10-13 web servers, 14-15 databases,
	// 16 domain controller, 17 external.
	for i := graph.VertexID(0); i < 10; i++ {
		mustAdd(g, i, workstation)
	}
	for i := graph.VertexID(10); i < 14; i++ {
		mustAdd(g, i, webServer)
	}
	mustAdd(g, 14, database)
	mustAdd(g, 15, database)
	mustAdd(g, 16, domainCtrl)
	mustAdd(g, 17, external)
	for i := graph.VertexID(0); i < 10; i++ {
		mustEdge(g, i, 10+graph.VertexID(r.Intn(4)), httpTraffic)
	}
	mustEdge(g, 10, 14, sqlTraffic)
	mustEdge(g, 11, 14, sqlTraffic)
	mustEdge(g, 12, 15, sqlTraffic)
	return g
}

// trafficStep scripts the evolving traffic: benign churn with an attack
// unfolding between t=4 and t=9.
func trafficStep(r *rand.Rand, t int) graph.ChangeSet {
	var cs graph.ChangeSet
	// Benign churn: a workstation re-targets its browsing.
	w := graph.VertexID(r.Intn(10))
	cs = append(cs, graph.DeleteOp(w, 10+graph.VertexID(r.Intn(4))))
	cs = append(cs, graph.InsertOp(w, workstation, 10+graph.VertexID(r.Intn(4)), webServer, httpTraffic))

	switch t {
	case 4: // the scan begins: workstation 3 probes every web server
		for i := graph.VertexID(10); i < 14; i++ {
			cs = append(cs, graph.InsertOp(3, workstation, i, webServer, httpTraffic))
		}
	case 6: // lateral movement over auth traffic; each hop re-purposes the
		// link, so any existing traffic on the pair is dropped first
		// (deletions are processed before insertions).
		cs = append(cs,
			graph.DeleteOp(3, 11), graph.DeleteOp(11, 14), graph.DeleteOp(14, 16),
			graph.InsertOp(3, workstation, 11, webServer, authTraffic),
			graph.InsertOp(11, webServer, 14, database, authTraffic),
			graph.InsertOp(14, database, 16, domainCtrl, authTraffic),
		)
	case 8: // exfiltration from the compromised web server
		cs = append(cs,
			graph.DeleteOp(11, 17), graph.DeleteOp(14, 17), graph.DeleteOp(11, 14),
			graph.InsertOp(11, webServer, 17, external, exfilTraffic),
			graph.InsertOp(14, database, 17, external, exfilTraffic),
			graph.InsertOp(11, webServer, 14, database, sqlTraffic),
		)
	case 10: // the attacker cleans up
		cs = append(cs,
			graph.DeleteOp(11, 17), graph.DeleteOp(14, 17),
			graph.DeleteOp(14, 16),
		)
	}
	return cs
}

func mustAdd(g *graph.Graph, v graph.VertexID, l graph.Label) {
	if err := g.AddVertex(v, l); err != nil {
		log.Fatal(err)
	}
}

func mustEdge(g *graph.Graph, u, v graph.VertexID, l graph.Label) {
	if err := g.AddEdge(u, v, l); err != nil {
		log.Fatal(err)
	}
}
