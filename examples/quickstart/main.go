// Quickstart: monitor a tiny evolving graph for two patterns.
//
// This is the 60-second tour of the public API: build a query pattern and a
// starting graph, wrap a filter in a Monitor, feed graph change operations,
// and read the possibly-joinable pairs at each timestamp. Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nntstream/internal/core"
	"nntstream/internal/graph"
	"nntstream/internal/join"
)

func main() {
	// Labels for readability.
	ab := graph.NewAlphabet()
	A, B, C := ab.Intern("A"), ab.Intern("B"), ab.Intern("C")
	wire := graph.Label(0)

	// Query 0: an A—B edge. Query 1: an A—B—C triangle.
	edge := graph.New()
	must(edge.AddVertex(0, A))
	must(edge.AddVertex(1, B))
	must(edge.AddEdge(0, 1, wire))

	triangle := graph.New()
	must(triangle.AddVertex(0, A))
	must(triangle.AddVertex(1, B))
	must(triangle.AddVertex(2, C))
	must(triangle.AddEdge(0, 1, wire))
	must(triangle.AddEdge(1, 2, wire))
	must(triangle.AddEdge(2, 0, wire))

	// The monitored graph starts as the path A—B—C.
	start := graph.New()
	must(start.AddVertex(10, A))
	must(start.AddVertex(11, B))
	must(start.AddVertex(12, C))
	must(start.AddEdge(10, 11, wire))
	must(start.AddEdge(11, 12, wire))

	// A Monitor drives any filter; the dominated-set-cover join is the
	// paper's recommended default.
	mon := core.NewMonitor(join.NewDSC(join.DefaultDepth))
	qEdge, err := mon.AddQuery(edge)
	check(err)
	qTri, err := mon.AddQuery(triangle)
	check(err)
	stream, err := mon.AddStream(start)
	check(err)
	names := map[core.QueryID]string{qEdge: "A—B edge", qTri: "triangle"}

	// The stream: close the triangle, then break it again.
	steps := []graph.ChangeSet{
		{graph.InsertOp(12, C, 10, A, wire)},
		{graph.DeleteOp(10, 11)},
	}

	report := func(t int, pairs []core.Pair) {
		fmt.Printf("t=%d:", t)
		if len(pairs) == 0 {
			fmt.Print(" no candidate patterns")
		}
		for _, p := range pairs {
			fmt.Printf(" [%s]", names[p.Query])
		}
		fmt.Println()
	}

	report(0, mon.Candidates())
	for i, cs := range steps {
		pairs, err := mon.Step(stream, cs)
		check(err)
		report(i+1, pairs)
	}

	// The filter admits no false negatives; candidates can be confirmed
	// with exact isomorphism when needed.
	if missed := mon.VerifyNoFalseNegatives(); len(missed) != 0 {
		log.Fatalf("filter missed pairs: %v", missed)
	}
	fmt.Println("verified: no false negatives at the final timestamp")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
