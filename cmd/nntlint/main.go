// Command nntlint runs the project's static analysis suite (see
// internal/analysis): machine-checks for the engine's concurrency,
// durability, and determinism invariants that go vet cannot know about.
//
// Usage:
//
//	nntlint [-list] [-analyzers a,b] [-json] [-github] [./... | dir ...]
//
// With no arguments it analyzes every package in the module. Findings print
// as file:line:col: analyzer: message (or one JSON object per line with
// -json, or GitHub Actions ::error annotations with -github), and the exit
// status is 1 when any survive review or a package fails to load. A finding
// that is correct-but-conservative is silenced in place with a reviewed
// comment:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"nntstream/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable driver: it returns the process exit code instead of
// calling os.Exit, so tests can assert on seeded violations.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nntlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("analyzers", "", "comma-separated subset of analyzers to run")
	asJSON := fs.Bool("json", false, "print findings as one JSON object per line")
	asGitHub := fs.Bool("github", false, "print findings as GitHub Actions ::error annotations")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "nntlint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	// Load errors exit 1, like findings: a package that cannot be analyzed
	// must fail the build, or a syntax error would silence the whole gate.
	// Exit 2 stays reserved for usage errors (bad flags, unknown analyzers).
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "nntlint: %v\n", err)
		return 1
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var pkgs []*analysis.Package
	add := func(ps ...*analysis.Package) {
		for _, p := range ps {
			if !seen[p.Path] {
				seen[p.Path] = true
				pkgs = append(pkgs, p)
			}
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			all, err := loader.LoadAll()
			if err != nil {
				fmt.Fprintf(stderr, "nntlint: %v\n", err)
				return 1
			}
			add(all...)
		default:
			pkg, err := loader.LoadDir(pat)
			if err != nil {
				fmt.Fprintf(stderr, "nntlint: %v\n", err)
				return 1
			}
			add(pkg)
		}
	}

	findings := analysis.RunAnalyzers(pkgs, analyzers)
	cwd, _ := os.Getwd()
	for _, f := range findings {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				f.Pos.Filename = rel
			}
		}
		switch {
		case *asJSON:
			printJSON(stdout, f)
		case *asGitHub:
			printGitHub(stdout, f)
		default:
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "nntlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// jsonFinding is the stable wire form of one -json line.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func printJSON(w io.Writer, f analysis.Finding) {
	b, err := json.Marshal(jsonFinding{
		File:     f.Pos.Filename,
		Line:     f.Pos.Line,
		Col:      f.Pos.Column,
		Analyzer: f.Analyzer,
		Message:  f.Message,
	})
	if err != nil {
		// Findings are plain strings and ints; Marshal cannot fail on them.
		panic(err)
	}
	fmt.Fprintf(w, "%s\n", b)
}

// printGitHub emits one GitHub Actions workflow command per finding, which
// the Actions runner turns into an inline PR annotation.
func printGitHub(w io.Writer, f analysis.Finding) {
	fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=nntlint/%s::%s\n",
		f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, githubEscape(f.Message))
}

// githubEscape encodes the characters the workflow-command grammar reserves
// in message data (%, CR, LF).
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}
