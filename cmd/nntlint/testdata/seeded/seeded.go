// Package seeded deliberately violates nntlint invariants; the driver test
// asserts a nonzero exit and per-analyzer findings on this package.
package seeded

import (
	"errors"
	"sync"
)

var errSeeded = errors.New("seeded")

type box struct {
	mu sync.Mutex
	n  map[string]int
}

func (b *box) leakLock() {
	b.mu.Lock() // locksafe: no matching release
	b.n["k"]++
}

func (b *box) unsortedKeys() []string {
	var keys []string
	for k := range b.n {
		keys = append(keys, k) // mapdeterm: no following sort
	}
	return keys
}

func isSeeded(err error) bool {
	return err == errSeeded // sentinelerr: == on a module sentinel
}
