package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestSeededViolationsExitNonzero proves the driver actually fails the build
// on findings: the seeded package violates three analyzers at once.
func TestSeededViolationsExitNonzero(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"./testdata/seeded"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"locksafe", "mapdeterm", "sentinelerr", "seeded.go:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "/root/") || strings.Contains(out, "\\root\\") {
		t.Errorf("findings should print module-relative paths:\n%s", out)
	}
}

// TestCleanTreeExitsZero is the self-hosting gate: the module — including
// internal/analysis itself — must be clean under its own linter.
func TestCleanTreeExitsZero(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{
		"locksafe", "sentinelerr", "mapdeterm", "walorder", "metricname",
		"blockhold", "lockorder", "ctxflow", "hotalloc",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list missing %s:\n%s", name, stdout.String())
		}
	}
}

// TestLockOrderZeroCycles pins the module-wide lock hierarchy: the cluster
// and engine mutexes (coordinator, worker group, durable engine, shard
// monitor, WAL) must stay acyclic, or a future edge could ABBA-deadlock a
// failover against a commit.
func TestLockOrderZeroCycles(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-analyzers", "lockorder", "../../internal/cluster", "../../internal/core"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("lock acquisition cycles in cluster+core:\n%s%s", stdout.String(), stderr.String())
	}
}

// TestBlockHoldCleanOverCluster pins the PR 7 review outcome: the current
// cluster layer holds no unreviewed blocking call under a mutex (the probe
// and ship shapes that regressed live on as blockhold fixtures).
func TestBlockHoldCleanOverCluster(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-analyzers", "blockhold", "../../internal/cluster"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("blocking calls under locks in internal/cluster:\n%s%s", stdout.String(), stderr.String())
	}
}

// TestLoadErrorExitsOne guards the gate itself: a package that cannot be
// loaded must fail the run like a finding would, not slip through.
func TestLoadErrorExitsOne(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"./testdata/does-not-exist"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "does-not-exist") {
		t.Errorf("stderr should name the failing directory: %s", stderr.String())
	}
}

// TestJSONOutput checks that every -json line is a parseable object with
// the stable field set CI consumes.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-json", "./testdata/seeded"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("no -json output")
	}
	sawSeeded := false
	for _, line := range lines {
		var f jsonFinding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("unparseable -json line %q: %v", line, err)
		}
		if f.File == "" || f.Line <= 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
		if strings.Contains(f.File, "seeded.go") {
			sawSeeded = true
		}
	}
	if !sawSeeded {
		t.Errorf("no finding names seeded.go:\n%s", stdout.String())
	}
}

// TestGitHubOutput checks the ::error workflow-command shape the lint CI
// job relies on for inline annotations.
func TestGitHubOutput(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-github", "./testdata/seeded"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	for _, line := range lines {
		if !strings.HasPrefix(line, "::error file=") {
			t.Errorf("line is not a workflow command: %q", line)
		}
		if !strings.Contains(line, ",line=") || !strings.Contains(line, ",title=nntlint/") {
			t.Errorf("annotation missing line/title properties: %q", line)
		}
	}
}

func TestUnknownAnalyzerRejected(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-analyzers", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing diagnostic: %s", stderr.String())
	}
}

// TestSubsetSelection runs only sentinelerr over the seeded package and
// expects the locksafe violation to go unreported.
func TestSubsetSelection(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-analyzers", "sentinelerr", "./testdata/seeded"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "sentinelerr") || strings.Contains(out, "locksafe") {
		t.Errorf("subset selection leaked analyzers:\n%s", out)
	}
}
