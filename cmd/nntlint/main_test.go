package main

import (
	"strings"
	"testing"
)

// TestSeededViolationsExitNonzero proves the driver actually fails the build
// on findings: the seeded package violates three analyzers at once.
func TestSeededViolationsExitNonzero(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"./testdata/seeded"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"locksafe", "mapdeterm", "sentinelerr", "seeded.go:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "/root/") || strings.Contains(out, "\\root\\") {
		t.Errorf("findings should print module-relative paths:\n%s", out)
	}
}

// TestCleanTreeExitsZero is the self-hosting gate: the module — including
// internal/analysis itself — must be clean under its own linter.
func TestCleanTreeExitsZero(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"locksafe", "sentinelerr", "mapdeterm", "walorder", "metricname"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list missing %s:\n%s", name, stdout.String())
		}
	}
}

func TestUnknownAnalyzerRejected(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-analyzers", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing diagnostic: %s", stderr.String())
	}
}

// TestSubsetSelection runs only sentinelerr over the seeded package and
// expects the locksafe violation to go unreported.
func TestSubsetSelection(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-analyzers", "sentinelerr", "./testdata/seeded"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "sentinelerr") || strings.Contains(out, "locksafe") {
		t.Errorf("subset selection leaked analyzers:\n%s", out)
	}
}
