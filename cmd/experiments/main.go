// Command experiments regenerates the paper's tables and figures on the
// reproduced system and prints them as markdown tables.
//
// Usage:
//
//	experiments [-fig all|2|12a|12b|13a|13b|14|15|16|17|ablation]
//	            [-scale 0.1] [-seed 1] [-v]
//
// Scale 1.0 runs the paper's full workload sizes (slow; gIndex1 re-mining
// dominates); the default regenerates every comparison at a laptop-friendly
// size with identical shapes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"nntstream/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (2, 12a, 12b, 13a, 13b, 14, 15, 16, 17, ablation, all)")
	scale := flag.Float64("scale", 0.1, "workload scale relative to the paper (1.0 = paper size)")
	seed := flag.Int64("seed", 1, "generator seed")
	verbose := flag.Bool("v", false, "log progress to stderr")
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Scale: *scale}
	if *verbose {
		cfg.Verbose = os.Stderr
	}

	single := func(run func(experiments.Config) (*experiments.Result, error)) func(experiments.Config) ([]*experiments.Result, error) {
		return func(c experiments.Config) ([]*experiments.Result, error) {
			res, err := run(c)
			if err != nil {
				return nil, err
			}
			return []*experiments.Result{res}, nil
		}
	}
	type runner struct {
		keys []string
		run  func(experiments.Config) ([]*experiments.Result, error)
	}
	runners := []runner{
		{[]string{"2"}, single(experiments.Fig02)},
		{[]string{"12a"}, single(func(c experiments.Config) (*experiments.Result, error) {
			return experiments.Fig12(c, experiments.DatasetAIDS)
		})},
		{[]string{"12b"}, single(func(c experiments.Config) (*experiments.Result, error) {
			return experiments.Fig12(c, experiments.DatasetSynthetic)
		})},
		{[]string{"13a"}, single(func(c experiments.Config) (*experiments.Result, error) {
			return experiments.Fig13(c, experiments.DatasetAIDS)
		})},
		{[]string{"13b"}, single(func(c experiments.Config) (*experiments.Result, error) {
			return experiments.Fig13(c, experiments.DatasetSynthetic)
		})},
		// Figures 14 and 15 come from one shared run.
		{[]string{"14", "15"}, func(c experiments.Config) ([]*experiments.Result, error) {
			r14, r15, err := experiments.Fig1415(c)
			if err != nil {
				return nil, err
			}
			return []*experiments.Result{r14, r15}, nil
		}},
		{[]string{"16"}, single(experiments.Fig16)},
		{[]string{"17"}, single(experiments.Fig17)},
		{[]string{"ablation"}, single(experiments.Ablation)},
		{[]string{"scaling"}, single(experiments.Scaling)},
	}

	want := strings.Split(*fig, ",")
	matches := func(keys []string) bool {
		for _, w := range want {
			if w == "all" {
				return true
			}
			for _, k := range keys {
				if w == k {
					return true
				}
			}
		}
		return false
	}

	ran := 0
	for _, r := range runners {
		if !matches(r.keys) {
			continue
		}
		results, err := r.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: figure %s: %v\n", strings.Join(r.keys, "/"), err)
			os.Exit(1)
		}
		for _, res := range results {
			res.Fprint(os.Stdout)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: unknown figure %q\n", *fig)
		printUsage(os.Stderr)
		os.Exit(2)
	}
}

func printUsage(w io.Writer) {
	fmt.Fprintln(w, "figures: 2 12a 12b 13a 13b 14 15 16 17 ablation scaling all")
}
