// Command coordinator fronts a fault-tolerant cluster of workers (see
// internal/cluster) with the same /v1 API the single-node serve command
// exposes: queries are broadcast to every replication group, streams are
// distributed, and candidate sets are merged, so existing clients work
// unchanged. The coordinator heartbeats workers, promotes caught-up replicas
// when primaries die, and degrades to stale reads (explicit X-NNTStream-Stale
// headers) plus fast-failing writes when a group has no safe leader.
//
//	coordinator -config cluster.json [-addr :8090] [-heartbeat 500ms]
//	            [-miss-threshold 3] [-rpc-timeout 5s] [-retry-attempts 4]
//	            [-drain-timeout 5s]
//
// The config file is the JSON form of cluster.Config:
//
//	{"workers": [{"id": "w0", "addr": "127.0.0.1:8081"},
//	             {"id": "w1", "addr": "127.0.0.1:8082"}],
//	 "groups": 2, "replication_factor": 2}
//
// Start each worker with `serve -worker-id w0 -addr :8081 -data-dir d0 ...`
// (same -filter/-depth/-shards on every node), then start the coordinator.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nntstream/internal/cluster"
	"nntstream/internal/obs"
	"nntstream/internal/retry"
	"nntstream/internal/server"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("coordinator: ")
	addr := flag.String("addr", ":8090", "client-facing listen address")
	configPath := flag.String("config", "", "cluster topology JSON (required)")
	heartbeat := flag.Duration("heartbeat", 500*time.Millisecond, "worker heartbeat interval")
	missThreshold := flag.Int("miss-threshold", 3, "consecutive missed heartbeats before a worker is declared dead")
	rpcTimeout := flag.Duration("rpc-timeout", cluster.DefaultRPCTimeout, "per-attempt deadline on worker RPCs")
	retryAttempts := flag.Int("retry-attempts", retry.DefaultMaxAttempts, "attempts per worker RPC (transient failures only)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown deadline for in-flight requests")
	flag.Parse()

	if *configPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(*configPath)
	if err != nil {
		log.Fatal(err)
	}
	var cfg cluster.Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Fatalf("parsing %s: %v", *configPath, err)
	}

	registry := obs.NewRegistry()
	coord, err := cluster.NewCoordinator(cfg, cluster.CoordinatorOptions{
		Transport: &cluster.RetryTransport{
			Next:   &cluster.HTTPTransport{Timeout: *rpcTimeout},
			Policy: retry.Policy{MaxAttempts: *retryAttempts},
		},
		MissThreshold:     *missThreshold,
		HeartbeatInterval: *heartbeat,
		Registry:          registry,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := coord.Start(context.Background()); err != nil {
		log.Fatalf("starting cluster: %v", err)
	}
	log.Printf("coordinating %d workers, %d groups, rf=%d",
		len(cfg.Workers), cfg.Groups, cfg.ReplicationFactor)

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           coord.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		log.Printf("listening on %s", *addr)
		if err := httpServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := server.Drain(ctx, httpServer); err != nil {
		log.Printf("shutdown: %v", err)
	}
	coord.Stop()
}
