// Command datagen generates the repository's workload files: static graph
// databases (synthetic Kuramochi–Karypis-style or AIDS-like chemical),
// query pattern sets, and graph streams (synthetic flip-process or
// Reality-Mining-like proximity traces), in the text formats that
// cmd/streamwatch consumes.
//
// Examples:
//
//	datagen -kind chemical -n 1000 -out compounds.g
//	datagen -kind synthetic -n 500 -out db.g
//	datagen -kind queries -n 100 -m 8 -from db.g -out q8.g
//	datagen -kind synstream -n 10 -ts 500 -outdir streams/
//	datagen -kind proxstream -n 5 -ts 500 -outdir streams/
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"nntstream/internal/datagen"
	"nntstream/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	kind := flag.String("kind", "synthetic", "synthetic, chemical, queries, synstream, proxstream")
	n := flag.Int("n", 100, "number of graphs / queries / streams")
	m := flag.Int("m", 8, "query size in edges (kind=queries)")
	ts := flag.Int("ts", 200, "timestamps per stream (stream kinds)")
	from := flag.String("from", "", "source database (kind=queries)")
	out := flag.String("out", "", "output file (graph kinds)")
	outdir := flag.String("outdir", "", "output directory (stream kinds)")
	seed := flag.Int64("seed", 1, "generator seed")
	sparse := flag.Bool("sparse", true, "synstream: sparse (p1=10%,p2=30%) vs dense (p1=20%,p2=15%)")
	flag.Parse()

	r := rand.New(rand.NewSource(*seed))
	switch *kind {
	case "synthetic":
		cfg := datagen.StaticSyntheticDefaults()
		cfg.NumGraphs = *n
		writeDB(*out, datagen.Synthetic(cfg, r))
	case "chemical":
		cfg := datagen.ChemicalDefaults()
		cfg.NumGraphs = *n
		writeDB(*out, datagen.Chemical(cfg, r))
	case "queries":
		if *from == "" {
			log.Fatal("-from is required for kind=queries")
		}
		f, err := os.Open(*from)
		if err != nil {
			log.Fatal(err)
		}
		db, err := graph.ReadDatabase(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		writeDB(*out, datagen.QuerySet(db, *n, *m, r))
	case "synstream":
		flip := datagen.SparseFlipDefaults()
		if !*sparse {
			flip = datagen.DenseFlipDefaults()
		}
		flip.Timestamps = *ts
		cfg := datagen.DefaultStreamWorkload(flip)
		cfg.Gen.NumGraphs = *n
		w := datagen.SyntheticStreams(cfg, r)
		writeStreams(*outdir, w.Streams)
		writeDB(filepath.Join(*outdir, "queries.g"), w.Queries)
		fmt.Printf("wrote %d streams and queries.g to %s\n", len(w.Streams), *outdir)
	case "proxstream":
		cfg := datagen.ProximityDefaults()
		cfg.Timestamps = *ts
		streams := datagen.ProximityStreams(cfg, *n, r)
		writeStreams(*outdir, streams)
		series := datagen.Proximity(cfg, rand.New(rand.NewSource(*seed)))
		queries := datagen.ProximityQueries(series, *n, 2, 6, r)
		writeDB(filepath.Join(*outdir, "queries.g"), queries)
		fmt.Printf("wrote %d streams and queries.g to %s\n", len(streams), *outdir)
	default:
		log.Fatalf("unknown kind %q", *kind)
	}
}

func writeDB(path string, db []*graph.Graph) {
	if path == "" {
		log.Fatal("-out is required")
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := graph.WriteDatabase(f, db); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d graphs to %s\n", len(db), path)
}

func writeStreams(dir string, streams []*graph.Stream) {
	if dir == "" {
		log.Fatal("-outdir is required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for i, s := range streams {
		path := filepath.Join(dir, fmt.Sprintf("stream%03d.gs", i))
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := graph.WriteStream(f, s); err != nil {
			f.Close()
			log.Fatal(err)
		}
		f.Close()
	}
}
