package main

import (
	"testing"
	"time"

	"nntstream/internal/server"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestSummarize(t *testing.T) {
	samples := []sample{
		{latency: ms(10), status: 200, steps: 8, ops: 32, pairs: 3},
		{latency: ms(20), status: 200, steps: 8, ops: 32, pairs: 1},
		{latency: ms(30), status: 429},
		{latency: ms(999), status: 0},  // transport error: no latency sample
		{latency: ms(888), status: -1}, // client-side drop: no latency sample
		{latency: ms(40), status: 500},
	}
	r := summarize("sustain", 50, 2*time.Second, samples)
	if r.Sent != 6 || r.OK != 2 || r.Shed != 1 || r.Errors != 3 {
		t.Fatalf("counts = sent %d ok %d shed %d err %d; want 6/2/1/3", r.Sent, r.OK, r.Shed, r.Errors)
	}
	if r.Steps != 16 || r.Ops != 64 || r.Pairs != 4 {
		t.Fatalf("throughput = steps %d ops %d pairs %d; want 16/64/4", r.Steps, r.Ops, r.Pairs)
	}
	if r.OpsPerSec != 32 {
		t.Fatalf("OpsPerSec = %v; want 32 (64 ops / 2s)", r.OpsPerSec)
	}
	if want := 1.0 / 6; r.ShedRate != want {
		t.Fatalf("ShedRate = %v; want %v", r.ShedRate, want)
	}
	// Percentiles cover completed HTTP exchanges only (200, 429, 500) —
	// transport errors and drops have no meaningful latency.
	if r.P50Ms != 20 {
		t.Fatalf("P50Ms = %v; want 20", r.P50Ms)
	}
	if r.P99Ms != 40 || r.P999Ms != 40 {
		t.Fatalf("tail = p99 %v p999 %v; want 40/40", r.P99Ms, r.P999Ms)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	r := summarize("sustain", 50, time.Second, nil)
	if r.Sent != 0 || r.OpsPerSec != 0 || r.ShedRate != 0 || r.P50Ms != 0 {
		t.Fatalf("empty summary = %+v; want zeros", r)
	}
}

func TestPercentileMs(t *testing.T) {
	sorted := []time.Duration{ms(1), ms(2), ms(3), ms(4), ms(5), ms(6), ms(7), ms(8), ms(9), ms(10)}
	cases := []struct {
		p    float64
		want float64
	}{
		{0.50, 5}, {0.99, 10}, {0.999, 10}, {0.10, 1}, {1.0, 10},
	}
	for _, tc := range cases {
		if got := percentileMs(sorted, tc.p); got != tc.want {
			t.Errorf("percentileMs(p=%v) = %v; want %v", tc.p, got, tc.want)
		}
	}
	if got := percentileMs(nil, 0.5); got != 0 {
		t.Errorf("percentileMs(empty) = %v; want 0", got)
	}
	if got := percentileMs(sorted[:1], 0.001); got != 1 {
		t.Errorf("percentileMs(single, low p) = %v; want 1 (rank clamps to 1)", got)
	}
}

func TestMergePhases(t *testing.T) {
	all := []sample{
		{latency: ms(10), status: 200, ops: 100},
		{latency: ms(50), status: 429},
	}
	phases := []PhaseReport{
		{Name: "sustain", TargetRate: 50, Seconds: 10},
		{Name: "overload", TargetRate: 300, Seconds: 5},
	}
	total := mergePhases(phases, all, 15*time.Second)
	if total.Name != "total" || total.Sent != 2 {
		t.Fatalf("total = %+v", total)
	}
	// Time-weighted mean of the phase rates: (50*10 + 300*5) / 15.
	if want := (50.0*10 + 300*5) / 15; total.TargetRate != want {
		t.Fatalf("TargetRate = %v; want %v", total.TargetRate, want)
	}
}

func TestBenchReport(t *testing.T) {
	total := PhaseReport{
		Sent: 100, Ops: 5000, OpsPerSec: 2500,
		P50Ms: 4, P99Ms: 20, P999Ms: 35,
	}
	r := benchReport("abc123", "go1.24.0", total)
	if r.Revision != "abc123" {
		t.Fatalf("Revision = %q", r.Revision)
	}
	op, ok := r.Lookup("Load_IngestOp")
	if !ok {
		t.Fatal("Load_IngestOp missing")
	}
	// 2500 ops/s on the ns/op axis: 1e9 / 2500 = 400000 ns per op.
	if op.NsPerOp != 400000 {
		t.Fatalf("Load_IngestOp = %v ns/op; want 400000", op.NsPerOp)
	}
	p99, ok := r.Lookup("Load_P99")
	if !ok || p99.NsPerOp != 20*1e6 {
		t.Fatalf("Load_P99 = %+v; want 20ms in ns", p99)
	}

	// A run with no successes produces no entries rather than Inf/0 values
	// that would fail benchfmt validation.
	empty := benchReport("abc123", "go1.24.0", PhaseReport{})
	if len(empty.Results) != 0 {
		t.Fatalf("empty run produced %d results", len(empty.Results))
	}
}

// TestWorkloadBatchesAreCanonical feeds generated batches through the real
// server-side decoder: every frame the generator emits must decode cleanly,
// or load results would measure rejection speed instead of ingest.
func TestWorkloadBatchesAreCanonical(t *testing.T) {
	w := newWorkload(1, 3, 8, 4, 8)
	for i := range w.streams {
		w.streams[i].id = i
		w.streams[i].nextVertex = 2
		w.streams[i].live = append(w.streams[i].live, [2]int32{0, 1})
	}
	seen := 0
	for b := 0; b < 50; b++ {
		body := w.nextBatch()
		for _, line := range splitLines(body) {
			if len(line) == 0 {
				continue
			}
			var d server.IngestDecoder
			if _, err := d.DecodeStep(line); err != nil {
				t.Fatalf("batch %d produced an invalid frame: %v\n%s", b, err, line)
			}
			seen++
		}
	}
	if want := 50 * 8; seen != want {
		t.Fatalf("decoded %d frames; want %d", seen, want)
	}
}

func splitLines(b []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, c := range b {
		if c == '\n' {
			out = append(out, b[start:i])
			start = i + 1
		}
	}
	if start < len(b) {
		out = append(out, b[start:])
	}
	return out
}
