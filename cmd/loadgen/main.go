// Command loadgen is the sustained-throughput harness for the /v1/ingest
// path: an open-loop traffic generator that registers a workload (queries +
// streams), fires NDJSON ingest batches on a fixed arrival schedule
// regardless of how fast the server answers (so server slowdown shows up as
// latency and shed rate, not as a politely slowed client), and reports
// ops/sec, latency quantiles, and the admission-control shed rate as JSON.
//
//	loadgen -target http://localhost:8080 -rate 100 -duration 20s \
//	        [-overload-factor 5] [-overload-duration 10s] \
//	        [-batch 8] [-ops 4] [-streams 4] [-queries 8] [-tenants 2] \
//	        [-graph-cap 512] [-seed 1] [-out report.json] \
//	        [-bench-out BENCH_load_pr.json] [-rev r] [-expect-shed]
//
// The schedule has two phases: a sustained phase at -rate batches/sec, then
// an optional overload phase at -rate × -overload-factor that drives the
// server's admission control into shedding (CI asserts shed_rate > 0 there
// with -expect-shed). The -bench-out file is an internal/benchfmt report —
// throughput as ns per applied op plus the latency quantiles — so
// cmd/benchgate diffs load runs exactly like microbenchmark trajectories.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	target := flag.String("target", "http://localhost:8080", "base URL of the serve instance")
	rate := flag.Float64("rate", 50, "sustained arrival rate in batches per second")
	duration := flag.Duration("duration", 20*time.Second, "sustained phase length")
	overloadFactor := flag.Float64("overload-factor", 5, "overload phase rate multiplier (<=1 disables the phase)")
	overloadDuration := flag.Duration("overload-duration", 10*time.Second, "overload phase length (0 disables the phase)")
	batch := flag.Int("batch", 8, "steps (timestamps) per ingest batch")
	opsPerStep := flag.Int("ops", 4, "edge operations per step")
	streams := flag.Int("streams", 4, "streams to register and spread steps across")
	queries := flag.Int("queries", 8, "query patterns to register")
	tenants := flag.Int("tenants", 1, "tenant ids to rotate through (X-Tenant header)")
	graphCap := flag.Int("graph-cap", 512, "live edges per stream before inserts are paired with deletes")
	seed := flag.Int64("seed", 1, "workload generator seed")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request client timeout")
	maxInFlight := flag.Int("max-in-flight", 512, "client-side concurrent request cap; scheduled batches beyond it are dropped and counted as errors")
	out := flag.String("out", "", "write the JSON report here ('' = stdout summary only)")
	benchOut := flag.String("bench-out", "", "also write an internal/benchfmt report here for cmd/benchgate")
	rev := flag.String("rev", "", "revision label recorded in the -bench-out report")
	expectShed := flag.Bool("expect-shed", false, "exit 1 unless the overload phase observed shed_rate > 0")
	flag.Parse()

	if *batch <= 0 || *opsPerStep < 0 || *streams <= 0 || *queries < 0 || *tenants <= 0 {
		log.Fatal("bad workload shape: -batch and -streams must be > 0, -ops and -queries >= 0, -tenants > 0")
	}
	client := &http.Client{Timeout: *timeout}
	gen := newWorkload(*seed, *streams, *graphCap, *opsPerStep, *batch)

	if err := gen.register(client, *target, *queries); err != nil {
		log.Fatalf("registering workload: %v", err)
	}

	phases := []phaseSpec{{name: "sustain", rate: *rate, length: *duration}}
	if *overloadFactor > 1 && *overloadDuration > 0 {
		phases = append(phases, phaseSpec{name: "overload", rate: *rate * *overloadFactor, length: *overloadDuration})
	}

	rep := &Report{
		Target:    *target,
		GoVersion: runtime.Version(),
		Config: map[string]string{
			"rate":     fmt.Sprint(*rate),
			"batch":    strconv.Itoa(*batch),
			"ops":      strconv.Itoa(*opsPerStep),
			"streams":  strconv.Itoa(*streams),
			"queries":  strconv.Itoa(*queries),
			"tenants":  strconv.Itoa(*tenants),
			"seed":     strconv.FormatInt(*seed, 10),
			"graphCap": strconv.Itoa(*graphCap),
		},
	}
	var all []sample
	totalStart := time.Now()
	for _, ph := range phases {
		samples := runPhase(client, *target, gen, ph, *tenants, *maxInFlight)
		rep.Phases = append(rep.Phases, summarize(ph.name, ph.rate, ph.length, samples))
		all = append(all, samples...)
	}
	rep.Total = mergePhases(rep.Phases, all, time.Since(totalStart))

	printSummary(os.Stderr, rep)
	if *out != "" {
		if err := writeJSONFile(*out, rep); err != nil {
			log.Fatalf("writing report: %v", err)
		}
		log.Printf("report written to %s", *out)
	}
	if *benchOut != "" {
		f, err := os.Create(*benchOut)
		if err != nil {
			log.Fatalf("writing bench report: %v", err)
		}
		if err := benchReport(*rev, runtime.Version(), rep.Total).Encode(f); err != nil {
			log.Fatalf("writing bench report: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("writing bench report: %v", err)
		}
		log.Printf("benchfmt report written to %s", *benchOut)
	}

	if rep.Total.OK == 0 {
		log.Fatal("no batch succeeded — is the server up and the workload valid?")
	}
	if *expectShed {
		shed := false
		for _, p := range rep.Phases {
			if p.Name == "overload" && p.Shed > 0 {
				shed = true
			}
		}
		if !shed {
			log.Fatal("-expect-shed: overload phase saw no 429s; admission control never engaged")
		}
	}
}

type phaseSpec struct {
	name   string
	rate   float64 // batches per second
	length time.Duration
}

// runPhase fires batches on an open-loop schedule: one dispatch every
// 1/rate seconds from phase start, regardless of completions. Bodies are
// generated on the scheduling goroutine (the generator is single-threaded
// state); the HTTP exchange runs in a goroutine per dispatch, capped by
// maxInFlight — beyond the cap the batch is dropped and counted locally,
// never blocking the schedule (that would close the loop). A collector
// goroutine drains results for the whole phase, so request goroutines can
// always hand off their sample and the scheduler never waits on the channel
// — an overload phase can dispatch far more batches than the channel could
// buffer.
func runPhase(client *http.Client, target string, gen *workload, ph phaseSpec, tenants, maxInFlight int) []sample {
	interval := time.Duration(float64(time.Second) / ph.rate)
	results := make(chan sample, maxInFlight)
	slots := make(chan struct{}, maxInFlight)
	var samples []sample
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for s := range results {
			samples = append(samples, s)
		}
	}()
	var wg sync.WaitGroup
	start := time.Now()
	end := start.Add(ph.length)
	dispatched, dropped := 0, 0
	for next := start; next.Before(end); next = next.Add(interval) {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		body := gen.nextBatch()
		tenant := "t" + strconv.Itoa(dispatched%tenants)
		dispatched++
		select {
		case slots <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-slots }()
				results <- send(client, target, tenant, body)
			}()
		default:
			dropped++ // client saturated: dropped
		}
	}
	wg.Wait()
	close(results)
	<-collected
	for i := 0; i < dropped; i++ {
		samples = append(samples, sample{status: -1})
	}
	return samples
}

// send posts one ingest batch and parses the outcome.
func send(client *http.Client, target, tenant string, body []byte) sample {
	req, err := http.NewRequest(http.MethodPost, target+"/v1/ingest", bytes.NewReader(body))
	if err != nil {
		return sample{status: 0}
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set("X-Tenant", tenant)
	start := time.Now()
	resp, err := client.Do(req)
	lat := time.Since(start)
	if err != nil {
		return sample{status: 0, latency: lat}
	}
	defer resp.Body.Close()
	s := sample{status: resp.StatusCode, latency: lat}
	if resp.StatusCode == http.StatusOK {
		var body struct {
			Steps int `json:"steps"`
			Ops   int `json:"ops"`
			Pairs int `json:"pairs"`
		}
		if json.NewDecoder(resp.Body).Decode(&body) == nil {
			s.steps, s.ops, s.pairs = body.Steps, body.Ops, body.Pairs
		}
	} else {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	}
	return s
}

// workload generates valid ingest batches: every insert touches a fresh
// vertex pair or extends a recent vertex, every delete retires a
// previously inserted live edge, and vertex labels are a pure function of
// the vertex id — so no operation can ever be rejected by the engine's
// validation, no matter the interleaving.
type workload struct {
	rng        *rand.Rand
	streams    []streamState
	graphCap   int
	opsPerStep int
	batchSteps int
	step       int // rotates the stream assignment
	buf        bytes.Buffer
}

type streamState struct {
	id         int   // server-assigned stream id
	nextVertex int32 // fresh vertex ids count up from here
	live       [][2]int32
}

const labelSpace = 16

func vertexLabel(v int32) int { return int(uint32(v) % labelSpace) }

func newWorkload(seed int64, streams, graphCap, opsPerStep, batchSteps int) *workload {
	w := &workload{
		rng:        rand.New(rand.NewSource(seed)),
		streams:    make([]streamState, streams),
		graphCap:   graphCap,
		opsPerStep: opsPerStep,
		batchSteps: batchSteps,
	}
	return w
}

// register creates the query patterns and streams on the server. Queries
// are short label paths (the shape the NPV filters index); streams start
// with a single seed edge.
func (w *workload) register(client *http.Client, target string, queries int) error {
	for q := 0; q < queries; q++ {
		n := 2 + q%3 // paths of 2..4 vertices
		var vertices []map[string]int
		var edges []map[string]int
		for i := 0; i < n; i++ {
			vertices = append(vertices, map[string]int{"id": i, "label": (q + i) % labelSpace})
			if i > 0 {
				edges = append(edges, map[string]int{"u": i - 1, "v": i, "label": (q + i) % labelSpace})
			}
		}
		if _, err := postJSON(client, target+"/v1/queries",
			map[string]any{"graph": map[string]any{"vertices": vertices, "edges": edges}}); err != nil {
			return fmt.Errorf("query %d: %w", q, err)
		}
	}
	for i := range w.streams {
		st := &w.streams[i]
		st.nextVertex = 2
		st.live = append(st.live, [2]int32{0, 1})
		body := map[string]any{"graph": map[string]any{
			"vertices": []map[string]int{
				{"id": 0, "label": vertexLabel(0)},
				{"id": 1, "label": vertexLabel(1)},
			},
			"edges": []map[string]int{{"u": 0, "v": 1, "label": 0}},
		}}
		resp, err := postJSON(client, target+"/v1/streams", body)
		if err != nil {
			return fmt.Errorf("stream %d: %w", i, err)
		}
		st.id = resp
	}
	return nil
}

func postJSON(client *http.Client, url string, body any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var out struct {
		ID    int    `json:"id"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusCreated {
		return 0, fmt.Errorf("%s: %d %s", url, resp.StatusCode, out.Error)
	}
	return out.ID, nil
}

// nextBatch renders one NDJSON body of batchSteps frames. Each step
// addresses one stream (round-robin), mixing fresh-edge inserts with
// deletes of the oldest live edge once the stream is at graph-cap.
func (w *workload) nextBatch() []byte {
	w.buf.Reset()
	for s := 0; s < w.batchSteps; s++ {
		st := &w.streams[w.step%len(w.streams)]
		w.step++
		fmt.Fprintf(&w.buf, `{"changes":[{"stream":%d,"ops":[`, st.id)
		for o := 0; o < w.opsPerStep; o++ {
			if o > 0 {
				w.buf.WriteByte(',')
			}
			if len(st.live) >= w.graphCap {
				e := st.live[0]
				st.live = st.live[1:]
				fmt.Fprintf(&w.buf, `{"op":"del","u":%d,"v":%d}`, e[0], e[1])
				continue
			}
			// Chain onto a recent vertex half the time, fresh pair otherwise.
			var u int32
			if w.rng.Intn(2) == 0 && st.nextVertex > 2 {
				u = st.nextVertex - 1 - int32(w.rng.Intn(2))
			} else {
				u = st.nextVertex
				st.nextVertex++
			}
			v := st.nextVertex
			st.nextVertex++
			st.live = append(st.live, [2]int32{u, v})
			fmt.Fprintf(&w.buf, `{"op":"ins","u":%d,"v":%d,"ul":%d,"vl":%d,"el":%d}`,
				u, v, vertexLabel(u), vertexLabel(v), (vertexLabel(u)+vertexLabel(v))%labelSpace)
		}
		w.buf.WriteString("]}]}\n")
	}
	out := make([]byte, w.buf.Len())
	copy(out, w.buf.Bytes())
	return out
}
