package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"nntstream/internal/benchfmt"
)

// PhaseReport is the measured outcome of one arrival-schedule phase.
type PhaseReport struct {
	Name       string  `json:"name"`
	TargetRate float64 `json:"target_batches_per_sec"`
	Seconds    float64 `json:"seconds"`

	Sent   int `json:"batches_sent"`
	OK     int `json:"batches_ok"`
	Shed   int `json:"batches_shed"`   // 429 responses
	Errors int `json:"batches_errors"` // transport failures and non-429 errors

	Steps int `json:"steps"`
	Ops   int `json:"ops"`
	Pairs int `json:"pairs"`

	OpsPerSec float64 `json:"ops_per_sec"`
	ShedRate  float64 `json:"shed_rate"` // shed / sent

	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
}

// Report is the loadgen JSON artifact: configuration echo, per-phase
// results, and the whole-run totals.
type Report struct {
	Target    string            `json:"target"`
	Config    map[string]string `json:"config"`
	GoVersion string            `json:"go_version,omitempty"`
	Phases    []PhaseReport     `json:"phases"`
	Total     PhaseReport       `json:"total"`
}

// sample is one completed request observation.
type sample struct {
	latency time.Duration
	status  int // 0 = transport error
	steps   int
	ops     int
	pairs   int
}

// summarize folds samples into a PhaseReport. Latency percentiles are over
// every completed request (shed responses included: the client waited for
// them too); throughput counts only applied ops.
func summarize(name string, targetRate float64, elapsed time.Duration, samples []sample) PhaseReport {
	r := PhaseReport{
		Name:       name,
		TargetRate: targetRate,
		Seconds:    elapsed.Seconds(),
		Sent:       len(samples),
	}
	lat := make([]time.Duration, 0, len(samples))
	for _, s := range samples {
		if s.status > 0 {
			// Percentiles are over completed HTTP exchanges (shed responses
			// included — the client waited for them too); transport errors
			// and client-side drops have no meaningful latency.
			lat = append(lat, s.latency)
		}
		switch {
		case s.status == 200:
			r.OK++
			r.Steps += s.steps
			r.Ops += s.ops
			r.Pairs += s.pairs
		case s.status == 429:
			r.Shed++
		default:
			r.Errors++
		}
	}
	if r.Seconds > 0 {
		r.OpsPerSec = float64(r.Ops) / r.Seconds
	}
	if r.Sent > 0 {
		r.ShedRate = float64(r.Shed) / float64(r.Sent)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	r.P50Ms = percentileMs(lat, 0.50)
	r.P99Ms = percentileMs(lat, 0.99)
	r.P999Ms = percentileMs(lat, 0.999)
	return r
}

// percentileMs returns the p-quantile of sorted latencies in milliseconds
// (nearest-rank; 0 for an empty set).
func percentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return float64(sorted[rank-1]) / float64(time.Millisecond)
}

// mergePhases folds per-phase reports into a whole-run total. Percentiles
// cannot be merged from percentiles, so the caller passes the combined
// sample set separately.
func mergePhases(phases []PhaseReport, all []sample, elapsed time.Duration) PhaseReport {
	total := summarize("total", 0, elapsed, all)
	for _, p := range phases {
		total.TargetRate += p.TargetRate * p.Seconds
	}
	if elapsed > 0 {
		total.TargetRate /= elapsed.Seconds()
	}
	return total
}

// writeJSONFile writes v as indented JSON to path.
func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// benchReport converts the run into a benchfmt.Report so cmd/benchgate can
// diff load runs exactly like microbenchmark trajectories. Throughput maps
// onto the ns/op axis as 1e9/ops_per_sec (nanoseconds per applied op —
// lower is better, same direction as every other benchmark), and the
// latency quantiles are recorded as their own entries in nanoseconds.
func benchReport(rev, goVersion string, total PhaseReport) *benchfmt.Report {
	r := &benchfmt.Report{Revision: rev, GoVersion: goVersion}
	if total.OpsPerSec > 0 {
		r.Add(benchfmt.Result{Name: "Load_IngestOp", Iterations: total.Ops,
			NsPerOp: 1e9 / total.OpsPerSec})
	}
	add := func(name string, ms float64) {
		if ms > 0 {
			r.Add(benchfmt.Result{Name: name, Iterations: total.Sent, NsPerOp: ms * 1e6})
		}
	}
	add("Load_P50", total.P50Ms)
	add("Load_P99", total.P99Ms)
	add("Load_P999", total.P999Ms)
	return r
}

// printSummary renders the human-readable run summary.
func printSummary(w io.Writer, rep *Report) {
	for _, p := range append(append([]PhaseReport{}, rep.Phases...), rep.Total) {
		fmt.Fprintf(w, "%-10s %6.1fs  sent=%-6d ok=%-6d shed=%-5d err=%-4d ops/s=%-9.0f p50=%6.1fms p99=%7.1fms p999=%7.1fms shed_rate=%.3f\n",
			p.Name, p.Seconds, p.Sent, p.OK, p.Shed, p.Errors, p.OpsPerSec, p.P50Ms, p.P99Ms, p.P999Ms, p.ShedRate)
	}
}
