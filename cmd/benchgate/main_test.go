package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nntstream/internal/benchfmt"
)

func report(pairs map[string]float64) *benchfmt.Report {
	r := &benchfmt.Report{GoVersion: "go1.24.0", GoMaxProcs: 1}
	for name, ns := range pairs {
		r.Add(benchfmt.Result{Name: name, Iterations: 10, NsPerOp: ns})
	}
	return r
}

func kinds(ds []delta) map[string]deltaKind {
	out := make(map[string]deltaKind, len(ds))
	for _, d := range ds {
		out[d.name] = d.kind
	}
	return out
}

func global(f float64) thresholds { return thresholds{global: f} }

func TestCompareClassifies(t *testing.T) {
	base := report(map[string]float64{
		"Steady":   1000,
		"Faster":   1000,
		"Slower":   1000,
		"Boundary": 1000,
		"Gone":     1000,
	})
	cand := report(map[string]float64{
		"Steady":   1050, // +5%: within threshold
		"Faster":   500,  // -50%: improved
		"Slower":   1300, // +30%: regressed
		"Boundary": 1200, // exactly +20%: not past the threshold
		"Added":    42,
	})
	got := kinds(compare(base, cand, global(0.20)))
	want := map[string]deltaKind{
		"Steady":   deltaOK,
		"Faster":   deltaImproved,
		"Slower":   deltaRegressed,
		"Boundary": deltaOK,
		"Gone":     deltaMissing,
		"Added":    deltaNew,
	}
	for name, k := range want {
		if got[name] != k {
			t.Errorf("%s classified %v; want %v", name, got[name], k)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("deltas = %v; want %d entries", got, len(want))
	}
}

// TestComparePerBenchOverride checks that a -threshold-for override loosens
// (or tightens) the gate for the named benchmark only.
func TestComparePerBenchOverride(t *testing.T) {
	base := report(map[string]float64{"Noisy": 1000, "Tight": 1000})
	cand := report(map[string]float64{"Noisy": 1400, "Tight": 1400}) // both +40%

	got := kinds(compare(base, cand, thresholds{
		global:   0.20,
		perBench: map[string]float64{"Noisy": 0.50},
	}))
	if got["Noisy"] != deltaOK {
		t.Errorf("Noisy classified %v; want OK under its 50%% override", got["Noisy"])
	}
	if got["Tight"] != deltaRegressed {
		t.Errorf("Tight classified %v; want regressed under the 20%% global", got["Tight"])
	}

	// An override can also tighten below the global.
	got = kinds(compare(base, cand, thresholds{
		global:   1.0,
		perBench: map[string]float64{"Tight": 0.10},
	}))
	if got["Noisy"] != deltaOK || got["Tight"] != deltaRegressed {
		t.Errorf("tightening override: got %v", got)
	}
}

func TestOverrideFlagParsing(t *testing.T) {
	var o overrideFlag
	for _, s := range []string{"NPV_Dominates_Packed=0.50", "Fig12_NL=0.3"} {
		if err := o.Set(s); err != nil {
			t.Fatalf("Set(%q): %v", s, err)
		}
	}
	if o.m["NPV_Dominates_Packed"] != 0.50 || o.m["Fig12_NL"] != 0.3 {
		t.Fatalf("parsed overrides = %v", o.m)
	}
	for _, bad := range []string{
		"NoEquals", // no separator
		"=0.5",     // empty name
		"X=",       // empty fraction
		"X=notafloat",
		"X=-0.1", // negative: would flag improvements
		"X=0",    // zero tolerance: everything regresses
		"X=-0",
		"X=NaN", // never comparable: gate vacuous
		"X=Inf", // infinite tolerance: gate vacuous
		"X=+Inf",
		"X=-Inf",
	} {
		if err := o.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted; want error", bad)
		}
	}
	if len(o.m) != 2 {
		t.Fatalf("rejected inputs mutated the map: %v", o.m)
	}
	if s := o.String(); s != "Fig12_NL=0.3,NPV_Dominates_Packed=0.5" {
		t.Errorf("String() = %q", s)
	}
}

func TestCompareSortedByName(t *testing.T) {
	base := report(map[string]float64{"b": 1, "a": 1, "c": 1})
	ds := compare(base, report(map[string]float64{"c": 1, "d": 1}), global(0.2))
	for i := 1; i < len(ds); i++ {
		if ds[i-1].name >= ds[i].name {
			t.Fatalf("deltas not sorted: %v then %v", ds[i-1].name, ds[i].name)
		}
	}
}

func writeReport(t *testing.T, dir, name string, r *benchfmt.Report) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Encode(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", report(map[string]float64{"X": 1000}))
	good := writeReport(t, dir, "good.json", report(map[string]float64{"X": 1100}))
	bad := writeReport(t, dir, "bad.json", report(map[string]float64{"X": 2000}))

	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	if code := run(base, good, global(0.20), false, devnull); code != 0 {
		t.Fatalf("within threshold: exit %d; want 0", code)
	}
	if code := run(base, bad, global(0.20), false, devnull); code != 1 {
		t.Fatalf("regression: exit %d; want 1", code)
	}
	if code := run(base, bad, global(0.20), true, devnull); code != 0 {
		t.Fatalf("warn-only regression: exit %d; want 0", code)
	}
	if code := run(filepath.Join(dir, "absent.json"), good, global(0.20), false, devnull); code != 2 {
		t.Fatalf("missing baseline: exit %d; want 2", code)
	}
	if code := run(base, bad, global(1.5), false, devnull); code != 0 {
		t.Fatalf("loose threshold: exit %d; want 0", code)
	}
	over := thresholds{global: 0.20, perBench: map[string]float64{"X": 1.5}}
	if code := run(base, bad, over, false, devnull); code != 0 {
		t.Fatalf("per-bench override: exit %d; want 0", code)
	}
}

// TestRunWarnsUnknownOverride pins the tooling bugfix: an override naming a
// benchmark absent from both reports produces a warning (so a renamed bench
// or Makefile typo is visible) but never changes the exit code.
func TestRunWarnsUnknownOverride(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", report(map[string]float64{"X": 1000}))
	cand := writeReport(t, dir, "cand.json", report(map[string]float64{"X": 1100}))

	capture := func(th thresholds) (int, string) {
		t.Helper()
		out, err := os.CreateTemp(dir, "out")
		if err != nil {
			t.Fatal(err)
		}
		defer out.Close()
		code := run(base, cand, th, false, out)
		text, err := os.ReadFile(out.Name())
		if err != nil {
			t.Fatal(err)
		}
		return code, string(text)
	}

	th := thresholds{global: 0.20, perBench: map[string]float64{"Renamed": 0.5, "X": 0.5}}
	code, text := capture(th)
	if code != 0 {
		t.Fatalf("unknown override name changed exit code to %d", code)
	}
	if want := "warning: -threshold-for Renamed matches no benchmark"; !strings.Contains(text, want) {
		t.Fatalf("output %q missing %q", text, want)
	}
	if strings.Contains(text, "-threshold-for X") {
		t.Fatalf("output %q warns about a known benchmark", text)
	}

	if _, text := capture(thresholds{global: 0.20, perBench: map[string]float64{"X": 0.5}}); strings.Contains(text, "warning") {
		t.Fatalf("output %q has spurious warning", text)
	}
}
