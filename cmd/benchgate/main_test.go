package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nntstream/internal/benchfmt"
)

func report(pairs map[string]float64) *benchfmt.Report {
	r := &benchfmt.Report{GoVersion: "go1.24.0", GoMaxProcs: 1}
	for name, ns := range pairs {
		r.Add(benchfmt.Result{Name: name, Iterations: 10, NsPerOp: ns})
	}
	return r
}

func kinds(ds []delta) map[string]deltaKind {
	out := make(map[string]deltaKind, len(ds))
	for _, d := range ds {
		out[d.name] = d.kind
	}
	return out
}

func global(f float64) thresholds { return thresholds{global: f} }

func TestCompareClassifies(t *testing.T) {
	base := report(map[string]float64{
		"Steady":   1000,
		"Faster":   1000,
		"Slower":   1000,
		"Boundary": 1000,
		"Gone":     1000,
	})
	cand := report(map[string]float64{
		"Steady":   1050, // +5%: within threshold
		"Faster":   500,  // -50%: improved
		"Slower":   1300, // +30%: regressed
		"Boundary": 1200, // exactly +20%: not past the threshold
		"Added":    42,
	})
	got := kinds(compare(base, cand, global(0.20)))
	want := map[string]deltaKind{
		"Steady":   deltaOK,
		"Faster":   deltaImproved,
		"Slower":   deltaRegressed,
		"Boundary": deltaOK,
		"Gone":     deltaMissing,
		"Added":    deltaNew,
	}
	for name, k := range want {
		if got[name] != k {
			t.Errorf("%s classified %v; want %v", name, got[name], k)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("deltas = %v; want %d entries", got, len(want))
	}
}

// TestComparePerBenchOverride checks that a -threshold-for override loosens
// (or tightens) the gate for the named benchmark only.
func TestComparePerBenchOverride(t *testing.T) {
	base := report(map[string]float64{"Noisy": 1000, "Tight": 1000})
	cand := report(map[string]float64{"Noisy": 1400, "Tight": 1400}) // both +40%

	got := kinds(compare(base, cand, thresholds{
		global:   0.20,
		perBench: map[string]float64{"Noisy": 0.50},
	}))
	if got["Noisy"] != deltaOK {
		t.Errorf("Noisy classified %v; want OK under its 50%% override", got["Noisy"])
	}
	if got["Tight"] != deltaRegressed {
		t.Errorf("Tight classified %v; want regressed under the 20%% global", got["Tight"])
	}

	// An override can also tighten below the global.
	got = kinds(compare(base, cand, thresholds{
		global:   1.0,
		perBench: map[string]float64{"Tight": 0.10},
	}))
	if got["Noisy"] != deltaOK || got["Tight"] != deltaRegressed {
		t.Errorf("tightening override: got %v", got)
	}
}

func TestOverrideFlagParsing(t *testing.T) {
	var o overrideFlag
	for _, s := range []string{"NPV_Dominates_Packed=0.50", "Fig12_NL=0.3"} {
		if err := o.Set(s); err != nil {
			t.Fatalf("Set(%q): %v", s, err)
		}
	}
	if o.m["NPV_Dominates_Packed"] != 0.50 || o.m["Fig12_NL"] != 0.3 {
		t.Fatalf("parsed overrides = %v", o.m)
	}
	for _, bad := range []string{
		"NoEquals", // no separator
		"=0.5",     // empty name
		"X=",       // empty fraction
		"X=notafloat",
		"X=-0.1", // negative: would flag improvements
		"X=0",    // zero tolerance: everything regresses
		"X=-0",
		"X=NaN", // never comparable: gate vacuous
		"X=Inf", // infinite tolerance: gate vacuous
		"X=+Inf",
		"X=-Inf",
	} {
		if err := o.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted; want error", bad)
		}
	}
	if len(o.m) != 2 {
		t.Fatalf("rejected inputs mutated the map: %v", o.m)
	}
	if s := o.String(); s != "Fig12_NL=0.3,NPV_Dominates_Packed=0.5" {
		t.Errorf("String() = %q", s)
	}
}

func TestCompareSortedByName(t *testing.T) {
	base := report(map[string]float64{"b": 1, "a": 1, "c": 1})
	ds := compare(base, report(map[string]float64{"c": 1, "d": 1}), global(0.2))
	for i := 1; i < len(ds); i++ {
		if ds[i-1].name >= ds[i].name {
			t.Fatalf("deltas not sorted: %v then %v", ds[i-1].name, ds[i].name)
		}
	}
}

func writeReport(t *testing.T, dir, name string, r *benchfmt.Report) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Encode(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", report(map[string]float64{"X": 1000}))
	good := writeReport(t, dir, "good.json", report(map[string]float64{"X": 1100}))
	bad := writeReport(t, dir, "bad.json", report(map[string]float64{"X": 2000}))

	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	if code := run(base, good, global(0.20), nil, false, devnull); code != 0 {
		t.Fatalf("within threshold: exit %d; want 0", code)
	}
	if code := run(base, bad, global(0.20), nil, false, devnull); code != 1 {
		t.Fatalf("regression: exit %d; want 1", code)
	}
	if code := run(base, bad, global(0.20), nil, true, devnull); code != 0 {
		t.Fatalf("warn-only regression: exit %d; want 0", code)
	}
	if code := run(filepath.Join(dir, "absent.json"), good, global(0.20), nil, false, devnull); code != 2 {
		t.Fatalf("missing baseline: exit %d; want 2", code)
	}
	if code := run(base, bad, global(1.5), nil, false, devnull); code != 0 {
		t.Fatalf("loose threshold: exit %d; want 0", code)
	}
	over := thresholds{global: 0.20, perBench: map[string]float64{"X": 1.5}}
	if code := run(base, bad, over, nil, false, devnull); code != 0 {
		t.Fatalf("per-bench override: exit %d; want 0", code)
	}
}

func TestAllocCapsFlagParsing(t *testing.T) {
	var a allocCapsFlag
	for _, s := range []string{"NPV_Dominates_Packed=0", "IngestDecode=0", "Warm=3"} {
		if err := a.Set(s); err != nil {
			t.Fatalf("Set(%q): %v", s, err)
		}
	}
	if a.m["NPV_Dominates_Packed"] != 0 || a.m["IngestDecode"] != 0 || a.m["Warm"] != 3 {
		t.Fatalf("parsed caps = %v", a.m)
	}
	for _, bad := range []string{"NoEquals", "=0", "X=", "X=1.5", "X=-1", "X=nan"} {
		if err := a.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted; want error", bad)
		}
	}
	if len(a.m) != 3 {
		t.Fatalf("rejected inputs mutated the map: %v", a.m)
	}
	if s := a.String(); s != "IngestDecode=0,NPV_Dominates_Packed=0,Warm=3" {
		t.Errorf("String() = %q", s)
	}
}

// allocReport builds a report whose entries carry allocation counts.
func allocReport(allocs map[string]int64) *benchfmt.Report {
	r := &benchfmt.Report{GoVersion: "go1.24.0", GoMaxProcs: 1}
	for name, n := range allocs {
		r.Add(benchfmt.Result{Name: name, Iterations: 10, NsPerOp: 1000, AllocsPerOp: n})
	}
	return r
}

func TestCheckAllocs(t *testing.T) {
	base := allocReport(map[string]int64{"Zero": 0, "Grew": 2, "Loose": 5})
	cand := allocReport(map[string]int64{"Zero": 1, "Grew": 4, "Loose": 5})

	var out strings.Builder
	v := checkAllocs(base, cand, map[string]int64{"Zero": 0, "Loose": 8, "Ghost": 0}, &out)
	if v != 1 {
		t.Fatalf("violations = %d; want 1 (Zero over cap, Loose under, Ghost absent)", v)
	}
	text := out.String()
	if !strings.Contains(text, "ALLOCS") || !strings.Contains(text, "Zero") {
		t.Errorf("output %q missing hard-gate line for Zero", text)
	}
	if !strings.Contains(text, "-max-allocs Ghost matches no candidate benchmark") {
		t.Errorf("output %q missing warning for absent cap target", text)
	}
	// Grew has no cap: its increase is a warning, never a violation.
	if !strings.Contains(text, "Grew allocs/op rose 2 -> 4") {
		t.Errorf("output %q missing alloc-increase warning for Grew", text)
	}
	if strings.Contains(text, "Loose allocs") {
		t.Errorf("output %q warns about unchanged Loose", text)
	}
}

// TestRunAllocCapHardGate pins the contract that -max-allocs violations fail
// the gate even under -warn-only: alloc counts are deterministic, so there
// is no noise to forgive.
func TestRunAllocCapHardGate(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", allocReport(map[string]int64{"Hot": 0}))
	leaky := writeReport(t, dir, "leaky.json", allocReport(map[string]int64{"Hot": 2}))
	clean := writeReport(t, dir, "clean.json", allocReport(map[string]int64{"Hot": 0}))

	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	caps := map[string]int64{"Hot": 0}
	if code := run(base, clean, global(0.20), caps, false, devnull); code != 0 {
		t.Fatalf("clean candidate: exit %d; want 0", code)
	}
	if code := run(base, leaky, global(0.20), caps, false, devnull); code != 1 {
		t.Fatalf("cap violation: exit %d; want 1", code)
	}
	if code := run(base, leaky, global(0.20), caps, true, devnull); code != 1 {
		t.Fatalf("cap violation under -warn-only: exit %d; want 1 (hard gate)", code)
	}
	if code := run(base, leaky, global(0.20), nil, true, devnull); code != 0 {
		t.Fatalf("no caps: exit %d; want 0 (increase is warn-only)", code)
	}
}

// TestRunWarnsUnknownOverride pins the tooling bugfix: an override naming a
// benchmark absent from both reports produces a warning (so a renamed bench
// or Makefile typo is visible) but never changes the exit code.
func TestRunWarnsUnknownOverride(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", report(map[string]float64{"X": 1000}))
	cand := writeReport(t, dir, "cand.json", report(map[string]float64{"X": 1100}))

	capture := func(th thresholds) (int, string) {
		t.Helper()
		out, err := os.CreateTemp(dir, "out")
		if err != nil {
			t.Fatal(err)
		}
		defer out.Close()
		code := run(base, cand, th, nil, false, out)
		text, err := os.ReadFile(out.Name())
		if err != nil {
			t.Fatal(err)
		}
		return code, string(text)
	}

	th := thresholds{global: 0.20, perBench: map[string]float64{"Renamed": 0.5, "X": 0.5}}
	code, text := capture(th)
	if code != 0 {
		t.Fatalf("unknown override name changed exit code to %d", code)
	}
	if want := "warning: -threshold-for Renamed matches no benchmark"; !strings.Contains(text, want) {
		t.Fatalf("output %q missing %q", text, want)
	}
	if strings.Contains(text, "-threshold-for X") {
		t.Fatalf("output %q warns about a known benchmark", text)
	}

	if _, text := capture(thresholds{global: 0.20, perBench: map[string]float64{"X": 0.5}}); strings.Contains(text, "warning") {
		t.Fatalf("output %q has spurious warning", text)
	}
}
