package main

import (
	"os"
	"path/filepath"
	"testing"

	"nntstream/internal/benchfmt"
)

func report(pairs map[string]float64) *benchfmt.Report {
	r := &benchfmt.Report{GoVersion: "go1.24.0", GoMaxProcs: 1}
	for name, ns := range pairs {
		r.Add(benchfmt.Result{Name: name, Iterations: 10, NsPerOp: ns})
	}
	return r
}

func kinds(ds []delta) map[string]deltaKind {
	out := make(map[string]deltaKind, len(ds))
	for _, d := range ds {
		out[d.name] = d.kind
	}
	return out
}

func TestCompareClassifies(t *testing.T) {
	base := report(map[string]float64{
		"Steady":   1000,
		"Faster":   1000,
		"Slower":   1000,
		"Boundary": 1000,
		"Gone":     1000,
	})
	cand := report(map[string]float64{
		"Steady":   1050, // +5%: within threshold
		"Faster":   500,  // -50%: improved
		"Slower":   1300, // +30%: regressed
		"Boundary": 1200, // exactly +20%: not past the threshold
		"Added":    42,
	})
	got := kinds(compare(base, cand, 0.20))
	want := map[string]deltaKind{
		"Steady":   deltaOK,
		"Faster":   deltaImproved,
		"Slower":   deltaRegressed,
		"Boundary": deltaOK,
		"Gone":     deltaMissing,
		"Added":    deltaNew,
	}
	for name, k := range want {
		if got[name] != k {
			t.Errorf("%s classified %v; want %v", name, got[name], k)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("deltas = %v; want %d entries", got, len(want))
	}
}

func TestCompareSortedByName(t *testing.T) {
	base := report(map[string]float64{"b": 1, "a": 1, "c": 1})
	ds := compare(base, report(map[string]float64{"c": 1, "d": 1}), 0.2)
	for i := 1; i < len(ds); i++ {
		if ds[i-1].name >= ds[i].name {
			t.Fatalf("deltas not sorted: %v then %v", ds[i-1].name, ds[i].name)
		}
	}
}

func writeReport(t *testing.T, dir, name string, r *benchfmt.Report) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Encode(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", report(map[string]float64{"X": 1000}))
	good := writeReport(t, dir, "good.json", report(map[string]float64{"X": 1100}))
	bad := writeReport(t, dir, "bad.json", report(map[string]float64{"X": 2000}))

	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	if code := run(base, good, 0.20, false, devnull); code != 0 {
		t.Fatalf("within threshold: exit %d; want 0", code)
	}
	if code := run(base, bad, 0.20, false, devnull); code != 1 {
		t.Fatalf("regression: exit %d; want 1", code)
	}
	if code := run(base, bad, 0.20, true, devnull); code != 0 {
		t.Fatalf("warn-only regression: exit %d; want 0", code)
	}
	if code := run(filepath.Join(dir, "absent.json"), good, 0.20, false, devnull); code != 2 {
		t.Fatalf("missing baseline: exit %d; want 2", code)
	}
	if code := run(base, bad, 1.5, false, devnull); code != 0 {
		t.Fatalf("loose threshold: exit %d; want 0", code)
	}
}
