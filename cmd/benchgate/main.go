// Command benchgate diffs two benchmark trajectory files produced by the
// root test binary's -benchjson mode and fails (exit 1) when any benchmark
// regressed past its threshold:
//
//	benchgate -baseline BENCH_main.json -candidate BENCH_pr.json \
//	    [-threshold 0.20] [-threshold-for Bench=0.50 ...] \
//	    [-max-allocs Bench=0 ...] [-warn-only]
//
// A regression is candidate ns/op > baseline ns/op * (1 + threshold). The
// global -threshold applies everywhere except benchmarks named by a
// repeatable -threshold-for name=fraction override — microbenchmarks whose
// short CI -benchtime runs are noisier than the end-to-end trajectories get
// a looser gate without loosening the gate for everything else. Benchmarks
// present on only one side are reported but never fail the gate (benches
// come and go across PRs); environment mismatches (GOMAXPROCS, Go version)
// are surfaced so noisy comparisons can be discounted. -warn-only
// downgrades regressions to warnings — CI uses it while the committed
// baseline is young and short -benchtime runs are noisy.
//
// Allocations gate separately from wall time. A repeatable -max-allocs
// name=N flag caps a benchmark's candidate allocs_per_op at N; exceeding
// the cap fails the gate even under -warn-only, because allocation counts
// are deterministic — there is no benchtime noise to forgive. This is how
// the zero-alloc hot loops (the packed dominance kernel, the ingest frame
// decoder) stay zero-alloc: -max-allocs Bench=0 turns their discipline into
// a hard CI invariant. Benchmarks without a cap still get their allocs
// compared against the baseline, with increases reported as warnings.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"nntstream/internal/benchfmt"
)

type deltaKind int

const (
	deltaOK deltaKind = iota
	deltaImproved
	deltaRegressed
	deltaMissing // in baseline only
	deltaNew     // in candidate only
)

type delta struct {
	name     string
	kind     deltaKind
	baseline float64 // ns/op; 0 when kind == deltaNew
	cand     float64 // ns/op; 0 when kind == deltaMissing
	ratio    float64 // cand / baseline when both sides exist
}

// thresholds resolves the tolerated slowdown fraction per benchmark: a
// global default plus named overrides from repeated -threshold-for flags.
type thresholds struct {
	global   float64
	perBench map[string]float64
}

func (t thresholds) forBench(name string) float64 {
	if f, ok := t.perBench[name]; ok {
		return f
	}
	return t.global
}

// overrideFlag parses repeated "-threshold-for name=fraction" occurrences
// into the perBench map, satisfying flag.Value.
type overrideFlag struct {
	m map[string]float64
}

func (o *overrideFlag) String() string {
	if o == nil || len(o.m) == 0 {
		return ""
	}
	parts := make([]string, 0, len(o.m))
	for name, f := range o.m {
		parts = append(parts, fmt.Sprintf("%s=%g", name, f))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (o *overrideFlag) Set(s string) error {
	name, frac, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=fraction, got %q", s)
	}
	f, err := strconv.ParseFloat(frac, 64)
	if err != nil {
		return fmt.Errorf("bad fraction in %q: %v", s, err)
	}
	// A zero or negative tolerance would flag every run (benchmarks are
	// never exactly equal), and NaN/Inf would make the gate vacuous — all
	// three are typos, not intents.
	if f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		return fmt.Errorf("threshold in %q must be a finite fraction > 0", s)
	}
	if o.m == nil {
		o.m = make(map[string]float64)
	}
	o.m[name] = f
	return nil
}

// allocCapsFlag parses repeated "-max-allocs name=N" occurrences into a
// per-benchmark allocation cap, satisfying flag.Value.
type allocCapsFlag struct {
	m map[string]int64
}

func (a *allocCapsFlag) String() string {
	if a == nil || len(a.m) == 0 {
		return ""
	}
	parts := make([]string, 0, len(a.m))
	for name, n := range a.m {
		parts = append(parts, fmt.Sprintf("%s=%d", name, n))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (a *allocCapsFlag) Set(s string) error {
	name, cap, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=allocs, got %q", s)
	}
	n, err := strconv.ParseInt(cap, 10, 64)
	if err != nil {
		return fmt.Errorf("bad alloc count in %q: %v", s, err)
	}
	if n < 0 {
		return fmt.Errorf("alloc cap in %q must be >= 0", s)
	}
	if a.m == nil {
		a.m = make(map[string]int64)
	}
	a.m[name] = n
	return nil
}

// checkAllocs enforces the -max-allocs caps against the candidate report and
// surfaces alloc increases versus the baseline for uncapped benchmarks.
// Returned violations are hard failures — allocation counts are
// deterministic, so -warn-only never forgives them. A cap naming a
// benchmark absent from the candidate is a warning, not a pass: a renamed
// zero-alloc benchmark must not silently lose its gate.
func checkAllocs(base, cand *benchfmt.Report, caps map[string]int64, w io.Writer) (violations int) {
	names := make([]string, 0, len(caps))
	for name := range caps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c, ok := cand.Lookup(name)
		if !ok {
			fmt.Fprintf(w, "benchgate: warning: -max-allocs %s matches no candidate benchmark\n", name)
			continue
		}
		if c.AllocsPerOp > caps[name] {
			fmt.Fprintf(w, "ALLOCS   %-32s %d allocs/op exceeds cap %d (hard gate; not subject to -warn-only)\n",
				name, c.AllocsPerOp, caps[name])
			violations++
		}
	}
	for _, c := range cand.Results {
		if _, capped := caps[c.Name]; capped {
			continue
		}
		if b, ok := base.Lookup(c.Name); ok && c.AllocsPerOp > b.AllocsPerOp {
			fmt.Fprintf(w, "benchgate: warning: %s allocs/op rose %d -> %d\n", c.Name, b.AllocsPerOp, c.AllocsPerOp)
		}
	}
	return violations
}

// compare diffs candidate against baseline. th gives the fractional
// slowdown tolerated before a benchmark counts as regressed (0.20 = +20%),
// resolved per benchmark name; the same fraction in the other direction is
// reported as an improvement. Deltas come back sorted by name.
func compare(baseline, candidate *benchfmt.Report, th thresholds) []delta {
	var out []delta
	for _, b := range baseline.Results {
		c, ok := candidate.Lookup(b.Name)
		if !ok {
			out = append(out, delta{name: b.Name, kind: deltaMissing, baseline: b.NsPerOp})
			continue
		}
		d := delta{name: b.Name, baseline: b.NsPerOp, cand: c.NsPerOp, ratio: c.NsPerOp / b.NsPerOp}
		threshold := th.forBench(b.Name)
		switch {
		case d.ratio > 1+threshold:
			d.kind = deltaRegressed
		case d.ratio < 1-threshold:
			d.kind = deltaImproved
		default:
			d.kind = deltaOK
		}
		out = append(out, d)
	}
	for _, c := range candidate.Results {
		if _, ok := baseline.Lookup(c.Name); !ok {
			out = append(out, delta{name: c.Name, kind: deltaNew, cand: c.NsPerOp})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (d delta) String() string {
	switch d.kind {
	case deltaMissing:
		return fmt.Sprintf("missing  %-32s baseline %.0f ns/op, absent from candidate", d.name, d.baseline)
	case deltaNew:
		return fmt.Sprintf("new      %-32s candidate %.0f ns/op, absent from baseline", d.name, d.cand)
	}
	verb := map[deltaKind]string{deltaOK: "ok", deltaImproved: "improved", deltaRegressed: "REGRESSED"}[d.kind]
	return fmt.Sprintf("%-8s %-32s %.0f -> %.0f ns/op (%+.1f%%)",
		verb, d.name, d.baseline, d.cand, (d.ratio-1)*100)
}

func loadReport(path string) (*benchfmt.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return benchfmt.Decode(f)
}

func run(baselinePath, candidatePath string, th thresholds, caps map[string]int64, warnOnly bool, w *os.File) int {
	base, err := loadReport(baselinePath)
	if err != nil {
		fmt.Fprintf(w, "benchgate: baseline: %v\n", err)
		return 2
	}
	cand, err := loadReport(candidatePath)
	if err != nil {
		fmt.Fprintf(w, "benchgate: candidate: %v\n", err)
		return 2
	}
	if base.GoMaxProcs != cand.GoMaxProcs || base.GoVersion != cand.GoVersion {
		fmt.Fprintf(w, "benchgate: environment mismatch: baseline %s GOMAXPROCS=%d vs candidate %s GOMAXPROCS=%d — treat deltas with suspicion\n",
			base.GoVersion, base.GoMaxProcs, cand.GoVersion, cand.GoMaxProcs)
	}
	// An override naming a benchmark in neither report is doing nothing —
	// almost always a renamed bench or a typo in the Makefile. Warn (never
	// fail: benches come and go across PRs and the flags outlive them).
	names := make([]string, 0, len(th.perBench))
	for name := range th.perBench {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, ok := base.Lookup(name); ok {
			continue
		}
		if _, ok := cand.Lookup(name); ok {
			continue
		}
		fmt.Fprintf(w, "benchgate: warning: -threshold-for %s matches no benchmark in either report\n", name)
	}
	regressions := 0
	for _, d := range compare(base, cand, th) {
		fmt.Fprintln(w, d)
		if d.kind == deltaRegressed {
			regressions++
		}
	}
	allocViolations := checkAllocs(base, cand, caps, w)
	exit := 0
	if regressions > 0 {
		if warnOnly {
			fmt.Fprintf(w, "benchgate: %d regression(s) past threshold (warn-only; not failing)\n", regressions)
		} else {
			fmt.Fprintf(w, "benchgate: %d regression(s) past threshold\n", regressions)
			exit = 1
		}
	}
	if allocViolations > 0 {
		fmt.Fprintf(w, "benchgate: %d allocation cap violation(s)\n", allocViolations)
		exit = 1
	}
	if exit == 0 && regressions == 0 {
		fmt.Fprintln(w, "benchgate: no regressions")
	}
	return exit
}

func main() {
	baseline := flag.String("baseline", "", "baseline trajectory JSON (required)")
	candidate := flag.String("candidate", "", "candidate trajectory JSON (required)")
	threshold := flag.Float64("threshold", 0.20, "fractional ns/op slowdown tolerated before failing")
	var overrides overrideFlag
	flag.Var(&overrides, "threshold-for", "per-benchmark threshold override as name=fraction (repeatable)")
	var caps allocCapsFlag
	flag.Var(&caps, "max-allocs", "hard allocs_per_op cap as name=N (repeatable; fails even under -warn-only)")
	warnOnly := flag.Bool("warn-only", false, "report ns/op regressions but exit 0 (alloc caps still fail)")
	flag.Parse()
	if *baseline == "" || *candidate == "" || *threshold < 0 {
		flag.Usage()
		os.Exit(2)
	}
	th := thresholds{global: *threshold, perBench: overrides.m}
	os.Exit(run(*baseline, *candidate, th, caps.m, *warnOnly, os.Stdout))
}
