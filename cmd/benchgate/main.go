// Command benchgate diffs two benchmark trajectory files produced by the
// root test binary's -benchjson mode and fails (exit 1) when any benchmark
// regressed past the threshold:
//
//	benchgate -baseline BENCH_main.json -candidate BENCH_pr.json [-threshold 0.20] [-warn-only]
//
// A regression is candidate ns/op > baseline ns/op * (1 + threshold).
// Benchmarks present on only one side are reported but never fail the gate
// (benches come and go across PRs); environment mismatches (GOMAXPROCS, Go
// version) are surfaced so noisy comparisons can be discounted. -warn-only
// downgrades regressions to warnings — CI uses it while the committed
// baseline is young and short -benchtime runs are noisy.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"nntstream/internal/benchfmt"
)

type deltaKind int

const (
	deltaOK deltaKind = iota
	deltaImproved
	deltaRegressed
	deltaMissing // in baseline only
	deltaNew     // in candidate only
)

type delta struct {
	name     string
	kind     deltaKind
	baseline float64 // ns/op; 0 when kind == deltaNew
	cand     float64 // ns/op; 0 when kind == deltaMissing
	ratio    float64 // cand / baseline when both sides exist
}

// compare diffs candidate against baseline. threshold is the fractional
// slowdown tolerated before a benchmark counts as regressed (0.20 = +20%);
// the same fraction in the other direction is reported as an improvement.
// Deltas come back sorted by name.
func compare(baseline, candidate *benchfmt.Report, threshold float64) []delta {
	var out []delta
	for _, b := range baseline.Results {
		c, ok := candidate.Lookup(b.Name)
		if !ok {
			out = append(out, delta{name: b.Name, kind: deltaMissing, baseline: b.NsPerOp})
			continue
		}
		d := delta{name: b.Name, baseline: b.NsPerOp, cand: c.NsPerOp, ratio: c.NsPerOp / b.NsPerOp}
		switch {
		case d.ratio > 1+threshold:
			d.kind = deltaRegressed
		case d.ratio < 1-threshold:
			d.kind = deltaImproved
		default:
			d.kind = deltaOK
		}
		out = append(out, d)
	}
	for _, c := range candidate.Results {
		if _, ok := baseline.Lookup(c.Name); !ok {
			out = append(out, delta{name: c.Name, kind: deltaNew, cand: c.NsPerOp})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (d delta) String() string {
	switch d.kind {
	case deltaMissing:
		return fmt.Sprintf("missing  %-32s baseline %.0f ns/op, absent from candidate", d.name, d.baseline)
	case deltaNew:
		return fmt.Sprintf("new      %-32s candidate %.0f ns/op, absent from baseline", d.name, d.cand)
	}
	verb := map[deltaKind]string{deltaOK: "ok", deltaImproved: "improved", deltaRegressed: "REGRESSED"}[d.kind]
	return fmt.Sprintf("%-8s %-32s %.0f -> %.0f ns/op (%+.1f%%)",
		verb, d.name, d.baseline, d.cand, (d.ratio-1)*100)
}

func loadReport(path string) (*benchfmt.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return benchfmt.Decode(f)
}

func run(baselinePath, candidatePath string, threshold float64, warnOnly bool, w *os.File) int {
	base, err := loadReport(baselinePath)
	if err != nil {
		fmt.Fprintf(w, "benchgate: baseline: %v\n", err)
		return 2
	}
	cand, err := loadReport(candidatePath)
	if err != nil {
		fmt.Fprintf(w, "benchgate: candidate: %v\n", err)
		return 2
	}
	if base.GoMaxProcs != cand.GoMaxProcs || base.GoVersion != cand.GoVersion {
		fmt.Fprintf(w, "benchgate: environment mismatch: baseline %s GOMAXPROCS=%d vs candidate %s GOMAXPROCS=%d — treat deltas with suspicion\n",
			base.GoVersion, base.GoMaxProcs, cand.GoVersion, cand.GoMaxProcs)
	}
	regressions := 0
	for _, d := range compare(base, cand, threshold) {
		fmt.Fprintln(w, d)
		if d.kind == deltaRegressed {
			regressions++
		}
	}
	if regressions > 0 {
		if warnOnly {
			fmt.Fprintf(w, "benchgate: %d regression(s) past %.0f%% (warn-only; not failing)\n", regressions, threshold*100)
			return 0
		}
		fmt.Fprintf(w, "benchgate: %d regression(s) past %.0f%%\n", regressions, threshold*100)
		return 1
	}
	fmt.Fprintln(w, "benchgate: no regressions")
	return 0
}

func main() {
	baseline := flag.String("baseline", "", "baseline trajectory JSON (required)")
	candidate := flag.String("candidate", "", "candidate trajectory JSON (required)")
	threshold := flag.Float64("threshold", 0.20, "fractional ns/op slowdown tolerated before failing")
	warnOnly := flag.Bool("warn-only", false, "report regressions but always exit 0")
	flag.Parse()
	if *baseline == "" || *candidate == "" || *threshold < 0 {
		flag.Usage()
		os.Exit(2)
	}
	os.Exit(run(*baseline, *candidate, *threshold, *warnOnly, os.Stdout))
}
