// Command serve runs the continuous subgraph-search monitor as an HTTP
// service (see internal/server for the API). Streams are sharded across
// filter instances for multi-core throughput.
//
//	serve [-addr :8080] [-filter dsc|skyline|nl|branch|graphgrep|gindex1|gindex2|exact]
//	      [-depth 3] [-shards 0] [-pprof addr] [-metrics-interval d]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"nntstream/internal/core"
	"nntstream/internal/gindex"
	"nntstream/internal/graphgrep"
	"nntstream/internal/join"
	"nntstream/internal/server"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("serve: ")
	addr := flag.String("addr", ":8080", "listen address")
	filterName := flag.String("filter", "dsc", "filter: dsc, skyline, nl, branch, graphgrep, gindex1, gindex2, exact")
	depth := flag.Int("depth", join.DefaultDepth, "NNT depth bound for the NPV filters")
	shards := flag.Int("shards", 0, "filter shards (0 = GOMAXPROCS; 1 disables sharding; snapshots require 1)")
	snapshot := flag.String("snapshot", "", "snapshot file: restored on boot if present, written on shutdown")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	metricsInterval := flag.Duration("metrics-interval", 0, "log engine stats at this interval (e.g. 30s); 0 disables")
	flag.Parse()

	factory, err := filterFactory(*filterName, *depth)
	if err != nil {
		log.Fatal(err)
	}
	var engine server.Engine
	var mon *core.Monitor
	if *shards == 1 || *snapshot != "" {
		if *snapshot != "" && *shards > 1 {
			log.Fatal("-snapshot requires -shards 1")
		}
		mon = core.NewMonitor(factory())
		if *snapshot != "" {
			if f, err := os.Open(*snapshot); err == nil {
				restored, rerr := core.RestoreMonitor(f, factory())
				f.Close()
				if rerr != nil {
					log.Fatalf("restoring %s: %v", *snapshot, rerr)
				}
				mon = restored
				log.Printf("restored %d queries, %d streams from %s",
					mon.QueryCount(), mon.StreamCount(), *snapshot)
			} else if !os.IsNotExist(err) {
				log.Fatal(err)
			}
		}
		engine = mon
	} else {
		engine = core.NewShardedMonitor(core.FilterFactory(factory), *shards)
	}

	srv := server.New(engine)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		log.Printf("listening on %s (filter=%s)", *addr, *filterName)
		if err := httpServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on %s (/debug/pprof/)", *pprofAddr)
			// DefaultServeMux carries the net/http/pprof handlers; keep it off
			// the API listener so profiling stays on an operator-only port.
			pprofServer := &http.Server{Addr: *pprofAddr, ReadHeaderTimeout: 5 * time.Second}
			if err := pprofServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof: %v", err)
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	if *metricsInterval > 0 {
		ticker := time.NewTicker(*metricsInterval)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				st := srv.Stats()
				log.Printf("stats: timestamps=%d avg_filter=%v candidate_ratio=%.4f",
					st.Timestamps, st.AvgTimePerTimestamp(), st.CandidateRatio())
			}
		}()
	}

	<-stop
	log.Print("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if *snapshot != "" && mon != nil {
		f, err := os.Create(*snapshot)
		if err != nil {
			log.Fatalf("writing snapshot: %v", err)
		}
		if err := mon.WriteSnapshot(f); err != nil {
			f.Close()
			log.Fatalf("writing snapshot: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("writing snapshot: %v", err)
		}
		log.Printf("snapshot written to %s", *snapshot)
	}
}

func filterFactory(name string, depth int) (func() core.Filter, error) {
	switch name {
	case "dsc":
		return func() core.Filter { return join.NewDSC(depth) }, nil
	case "skyline":
		return func() core.Filter { return join.NewSkyline(depth) }, nil
	case "nl":
		return func() core.Filter { return join.NewNL(depth) }, nil
	case "branch":
		return func() core.Filter { return join.NewBranch(depth) }, nil
	case "graphgrep":
		return func() core.Filter { return graphgrep.New(graphgrep.DefaultLength) }, nil
	case "gindex1":
		return func() core.Filter { return gindex.New(gindex.Setting1()) }, nil
	case "gindex2":
		return func() core.Filter { return gindex.New(gindex.Setting2()) }, nil
	case "exact":
		return func() core.Filter { return join.NewExact() }, nil
	default:
		return nil, fmt.Errorf("unknown filter %q", name)
	}
}
