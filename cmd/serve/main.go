// Command serve runs the continuous subgraph-search monitor as an HTTP
// service (see internal/server for the API). Streams are sharded across
// filter instances for multi-core throughput, and -data-dir makes the engine
// durable: every mutation is write-ahead logged and periodically folded into
// an atomic checkpoint, so a killed process recovers to exactly the
// acknowledged operations on restart.
//
//	serve [-addr :8080] [-filter dsc|skyline|nl|branch|graphgrep|gindex1|gindex2|exact]
//	      [-depth 3] [-shards 0] [-workers 0] [-data-dir dir]
//	      [-fsync always|interval|never] [-fsync-interval 100ms]
//	      [-checkpoint-interval 5m] [-max-body-bytes n]
//	      [-ingest-max-inflight n] [-ingest-rate ops/s] [-ingest-burst ops]
//	      [-ingest-read-timeout 10s]
//	      [-pprof addr] [-metrics-interval d] [-drain-timeout 5s]
//
// With -worker-id the process instead joins a replicated cluster as a worker
// node (requires -data-dir): it serves the internal/cluster worker API —
// role assignments, WAL-record replication, snapshots, and the per-group data
// plane — and takes its orders from a coordinator (see cmd/coordinator).
// Filter, depth, and shard flags must match across the whole cluster.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"nntstream/internal/cluster"
	"nntstream/internal/core"
	"nntstream/internal/gindex"
	"nntstream/internal/graphgrep"
	"nntstream/internal/join"
	"nntstream/internal/obs"
	"nntstream/internal/server"
	"nntstream/internal/wal"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("serve: ")
	addr := flag.String("addr", ":8080", "listen address")
	filterName := flag.String("filter", "dsc", "filter: dsc, skyline, nl, branch, graphgrep, gindex1, gindex2, exact")
	depth := flag.Int("depth", join.DefaultDepth, "NNT depth bound for the NPV filters")
	shards := flag.Int("shards", 0, "filter shards (0 = GOMAXPROCS; 1 disables sharding)")
	workers := flag.Int("workers", 0, "per-shard evaluation workers for the NPV join filters (0 = auto: GOMAXPROCS/shards, GOMAXPROCS when unsharded; 1 = sequential)")
	dataDir := flag.String("data-dir", "", "durability directory (WAL + checkpoints); empty runs in-memory only")
	fsync := flag.String("fsync", "always", "WAL fsync policy: always, interval, never")
	fsyncInterval := flag.Duration("fsync-interval", wal.DefaultSyncInterval, "flush cadence for -fsync interval")
	checkpointInterval := flag.Duration("checkpoint-interval", 5*time.Minute, "background checkpoint cadence; 0 disables (checkpoint on shutdown only)")
	maxBodyBytes := flag.Int64("max-body-bytes", server.DefaultMaxBodyBytes, "request body size cap (413 above it)")
	ingestMaxInflight := flag.Int("ingest-max-inflight", 0, "concurrent /v1/ingest budget; extra requests get 429 (0 = unlimited)")
	ingestRate := flag.Float64("ingest-rate", 0, "per-tenant /v1/ingest quota in edge ops per second (0 = unlimited)")
	ingestBurst := flag.Float64("ingest-burst", 0, "per-tenant /v1/ingest burst in edge ops (0 = same as -ingest-rate)")
	ingestReadTimeout := flag.Duration("ingest-read-timeout", 10*time.Second, "per-request /v1/ingest body read deadline; 0 leaves the global read timeout in charge")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown deadline for in-flight requests")
	metricsInterval := flag.Duration("metrics-interval", 0, "log engine stats at this interval (e.g. 30s); 0 disables")
	workerID := flag.String("worker-id", "", "join a replicated cluster as this worker (requires -data-dir); serves the cluster worker API for a coordinator instead of the single-node API")
	flag.Parse()

	factory, err := filterFactory(*filterName, *depth)
	if err != nil {
		log.Fatal(err)
	}
	registry := obs.NewRegistry()

	if *workerID != "" {
		runWorker(*workerID, *addr, *dataDir, *fsync, *fsyncInterval,
			*checkpointInterval, *drainTimeout, *shards, *workers, factory, registry)
		return
	}

	var engine server.Engine
	var durable *core.DurableEngine
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			log.Fatal(err)
		}
		durable, err = core.OpenDurableEngine(*dataDir, core.FilterFactory(factory), core.DurableOptions{
			Shards:             *shards,
			Workers:            *workers,
			Fsync:              policy,
			FsyncInterval:      *fsyncInterval,
			CheckpointInterval: *checkpointInterval,
			Metrics:            wal.NewMetrics(registry),
		})
		if err != nil {
			log.Fatalf("opening data dir %s: %v", *dataDir, err)
		}
		log.Printf("durable engine in %s (fsync=%s, checkpoint every %v): recovered %d queries, %d streams",
			*dataDir, policy, *checkpointInterval, durable.QueryCount(), durable.StreamCount())
		engine = durable
	} else if *shards == 1 {
		f := factory()
		if pf, ok := f.(core.ParallelFilter); ok {
			pf.SetWorkers(*workers)
		}
		engine = core.NewMonitor(f)
	} else {
		engine = core.NewShardedMonitorWith(core.FilterFactory(factory),
			core.ShardedOptions{Shards: *shards, Workers: *workers})
	}

	srv := server.NewWithRegistry(engine, registry)
	srv.SetMaxBodyBytes(*maxBodyBytes)
	srv.SetIngestLimits(server.IngestLimits{
		MaxInFlight: *ingestMaxInflight,
		TenantRate:  *ingestRate,
		TenantBurst: *ingestBurst,
		ReadTimeout: *ingestReadTimeout,
	})
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		log.Printf("listening on %s (filter=%s)", *addr, *filterName)
		if err := httpServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	var pprofServer *http.Server
	if *pprofAddr != "" {
		// DefaultServeMux carries the net/http/pprof handlers; keep it off
		// the API listener so profiling stays on an operator-only port.
		// The generous write timeout leaves room for long CPU profiles.
		pprofServer = &http.Server{
			Addr:              *pprofAddr,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       30 * time.Second,
			WriteTimeout:      2 * time.Minute,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			log.Printf("pprof listening on %s (/debug/pprof/)", *pprofAddr)
			if err := pprofServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof: %v", err)
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	if *metricsInterval > 0 {
		ticker := time.NewTicker(*metricsInterval)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				st := srv.Stats()
				log.Printf("stats: timestamps=%d avg_filter=%v candidate_ratio=%.4f",
					st.Timestamps, st.AvgTimePerTimestamp(), st.CandidateRatio())
			}
		}()
	}

	<-stop
	log.Print("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting new requests and let in-flight ones (a StepAll mid-write,
	// a profile download) run to completion before the engine checkpoints.
	if err := server.Drain(ctx, httpServer, pprofServer); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if durable != nil {
		// Final checkpoint + WAL release; after this a restart boots from
		// the checkpoint alone.
		if err := durable.Close(); err != nil {
			log.Fatalf("closing durable engine: %v", err)
		}
		log.Printf("checkpoint written to %s", *dataDir)
	}
}

// runWorker serves the cluster worker API until interrupted. The worker is
// passive — the coordinator pushes roles and drives failover — so beyond
// opening group engines lazily there is nothing to start here.
func runWorker(id, addr, dataDir, fsync string, fsyncInterval, checkpointInterval,
	drainTimeout time.Duration, shards, workers int, factory func() core.Filter,
	registry *obs.Registry) {
	if dataDir == "" {
		log.Fatal("-worker-id requires -data-dir (replicas recover from their own WAL)")
	}
	policy, err := wal.ParseSyncPolicy(fsync)
	if err != nil {
		log.Fatal(err)
	}
	wk := cluster.NewWorker(id, dataDir, cluster.WorkerOptions{
		Factory:            core.FilterFactory(factory),
		Shards:             shards,
		EvalWorkers:        workers,
		Fsync:              policy,
		FsyncInterval:      fsyncInterval,
		CheckpointInterval: checkpointInterval,
		Metrics:            cluster.NewMetrics(registry),
		WALMetrics:         wal.NewMetrics(registry),
	})

	mux := http.NewServeMux()
	mux.Handle("/", wk.Handler())
	mux.HandleFunc("GET /v1/metrics", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		rw.WriteHeader(http.StatusOK)
		_ = registry.WritePrometheus(rw)
	})
	httpServer := &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		log.Printf("worker %s listening on %s (data in %s)", id, addr, dataDir)
		if err := httpServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := server.Drain(ctx, httpServer); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if err := wk.Close(); err != nil {
		log.Fatalf("closing worker: %v", err)
	}
	log.Printf("group checkpoints written to %s", dataDir)
}

func filterFactory(name string, depth int) (func() core.Filter, error) {
	switch name {
	case "dsc":
		return func() core.Filter { return join.NewDSC(depth) }, nil
	case "skyline":
		return func() core.Filter { return join.NewSkyline(depth) }, nil
	case "nl":
		return func() core.Filter { return join.NewNL(depth) }, nil
	case "branch":
		return func() core.Filter { return join.NewBranch(depth) }, nil
	case "graphgrep":
		return func() core.Filter { return graphgrep.New(graphgrep.DefaultLength) }, nil
	case "gindex1":
		return func() core.Filter { return gindex.New(gindex.Setting1()) }, nil
	case "gindex2":
		return func() core.Filter { return gindex.New(gindex.Setting2()) }, nil
	case "exact":
		return func() core.Filter { return join.NewExact() }, nil
	default:
		return nil, fmt.Errorf("unknown filter %q", name)
	}
}
