// Command streamwatch runs continuous subgraph pattern search over recorded
// graph streams: it loads a query database and one or more stream files,
// drives the selected filter timestamp by timestamp, and prints the
// possibly-joinable (stream, query) pairs whenever they change.
//
// Usage:
//
//	streamwatch -queries patterns.g [-filter dsc|skyline|nl|branch|graphgrep|gindex1|gindex2|exact]
//	            [-depth 3] [-verify] stream1.gs [stream2.gs ...]
//
// With -remote URL the same workload is replayed against a running /v1 API —
// a single-node serve or a cluster coordinator (cmd/coordinator) — instead of
// an in-process monitor. Every request runs under a retry.Policy, so brief
// outages (a coordinator mid-failover answering 503, a dropped connection)
// are retried with backoff rather than aborting the replay; the coordinator's
// idempotent write API makes re-sending safe. -filter/-depth are the remote
// engine's choice and are ignored, and -verify is local-only.
//
// File formats are the line-oriented formats of internal/graph: query
// databases use gSpan-style "t/v/e" sections, streams add "ts" sections
// with "+ u v ulab vlab elab" and "- u v" change lines (see cmd/datagen to
// generate both).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"

	"nntstream/internal/core"
	"nntstream/internal/gindex"
	"nntstream/internal/graph"
	"nntstream/internal/graphgrep"
	"nntstream/internal/join"
	"nntstream/internal/retry"
	"nntstream/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("streamwatch: ")
	queriesPath := flag.String("queries", "", "query pattern database file (required)")
	filterName := flag.String("filter", "dsc", "filter: dsc, skyline, nl, branch, graphgrep, gindex1, gindex2, exact")
	depth := flag.Int("depth", join.DefaultDepth, "NNT depth bound for the NPV filters")
	verify := flag.Bool("verify", false, "confirm reported pairs with exact isomorphism (local mode only)")
	quiet := flag.Bool("quiet", false, "only print the summary")
	remote := flag.String("remote", "", "replay against this /v1 base URL (serve or coordinator) instead of an in-process monitor")
	retryAttempts := flag.Int("retry-attempts", retry.DefaultMaxAttempts, "attempts per remote request before giving up (-remote only)")
	flag.Parse()

	if *queriesPath == "" || flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	qf, err := os.Open(*queriesPath)
	if err != nil {
		log.Fatal(err)
	}
	queries, err := graph.ReadDatabase(qf)
	qf.Close()
	if err != nil {
		log.Fatalf("reading queries: %v", err)
	}

	var streams []*graph.Stream
	for _, path := range flag.Args() {
		sf, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		s, err := graph.ReadStream(sf)
		sf.Close()
		if err != nil {
			log.Fatalf("reading stream %s: %v", path, err)
		}
		streams = append(streams, s)
	}

	if *remote != "" {
		if *verify {
			log.Fatal("-verify needs the in-process exact engine; it cannot run against -remote")
		}
		runRemote(*remote, *retryAttempts, queries, streams, *quiet)
		return
	}

	f, err := makeFilter(*filterName, *depth)
	if err != nil {
		log.Fatal(err)
	}
	mon := core.NewMonitor(f)
	for _, q := range queries {
		if _, err := mon.AddQuery(q); err != nil {
			log.Fatal(err)
		}
	}

	var cursors []*graph.Cursor
	var ids []core.StreamID
	for _, s := range streams {
		id, err := mon.AddStream(s.Start)
		if err != nil {
			log.Fatal(err)
		}
		cursors = append(cursors, graph.NewCursor(s))
		ids = append(ids, id)
	}
	fmt.Printf("watching %d streams for %d patterns with %s\n",
		len(ids), len(queries), mon.Filter().Name())

	prev := ""
	t := 0
	for {
		changes := make(map[core.StreamID]graph.ChangeSet)
		advanced := false
		for i, c := range cursors {
			cs, ok := c.Next()
			if !ok {
				continue
			}
			advanced = true
			if len(cs) > 0 {
				changes[ids[i]] = cs
			}
		}
		if !advanced {
			break
		}
		t++
		pairs, err := mon.StepAll(changes)
		if err != nil {
			log.Fatal(err)
		}
		if *verify {
			pairs = confirm(mon, pairs)
		}
		if cur := fmt.Sprint(pairs); cur != prev && !*quiet {
			fmt.Printf("t=%d: %v\n", t, pairs)
			prev = cur
		}
	}

	st := mon.Stats()
	fmt.Printf("done: %d timestamps, avg filter time %v, candidate ratio %.2f%%\n",
		st.Timestamps, st.AvgTimePerTimestamp(), 100*st.CandidateRatio())
}

// remoteMonitor replays the workload over a /v1 HTTP API. Each request runs
// under a retry.Policy: transport failures and gateway statuses (502/503/504
// — what a coordinator answers while a group is degraded or mid-failover) are
// retried with jittered backoff, while deliberate responses like 400 or 409
// are permanent. Re-sending is safe against the coordinator, whose write API
// is idempotent; a plain serve node never emits gateway statuses, so retries
// there only cover reconnects.
type remoteMonitor struct {
	base   string
	client *http.Client
	policy retry.Policy
}

func (m *remoteMonitor) call(ctx context.Context, method, path string, in, out any) error {
	return m.policy.Do(ctx, func(ctx context.Context) error {
		var body io.Reader
		if in != nil {
			data, err := json.Marshal(in)
			if err != nil {
				return retry.Permanent(err)
			}
			body = bytes.NewReader(data)
		}
		req, err := http.NewRequestWithContext(ctx, method, m.base+path, body)
		if err != nil {
			return retry.Permanent(err)
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := m.client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if err != nil {
			return err
		}
		if resp.StatusCode/100 != 2 {
			err := fmt.Errorf("%s %s: %s: %s", method, path, resp.Status,
				strings.TrimSpace(string(data)))
			switch resp.StatusCode {
			case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
				return err
			}
			return retry.Permanent(err)
		}
		if out != nil {
			if err := json.Unmarshal(data, out); err != nil {
				return retry.Permanent(err)
			}
		}
		return nil
	})
}

func runRemote(base string, attempts int, queries []*graph.Graph, streams []*graph.Stream, quiet bool) {
	m := &remoteMonitor{
		base:   strings.TrimSuffix(base, "/"),
		client: &http.Client{},
		policy: retry.Policy{MaxAttempts: attempts},
	}
	ctx := context.Background()

	for i, q := range queries {
		var resp struct {
			ID int `json:"id"`
		}
		if err := m.call(ctx, http.MethodPost, "/v1/queries",
			map[string]server.WireGraph{"graph": server.FromGraph(q)}, &resp); err != nil {
			log.Fatalf("registering query %d: %v", i, err)
		}
	}

	var cursors []*graph.Cursor
	var ids []int
	for i, s := range streams {
		var resp struct {
			ID int `json:"id"`
		}
		if err := m.call(ctx, http.MethodPost, "/v1/streams",
			map[string]server.WireGraph{"graph": server.FromGraph(s.Start)}, &resp); err != nil {
			log.Fatalf("registering stream %d: %v", i, err)
		}
		cursors = append(cursors, graph.NewCursor(s))
		ids = append(ids, resp.ID)
	}
	fmt.Printf("watching %d streams for %d patterns via %s\n", len(ids), len(queries), m.base)

	prev := ""
	t := 0
	for {
		changes := make(map[string][]server.WireOp)
		advanced := false
		for i, c := range cursors {
			cs, ok := c.Next()
			if !ok {
				continue
			}
			advanced = true
			if len(cs) > 0 {
				changes[strconv.Itoa(ids[i])] = wireOps(cs)
			}
		}
		if !advanced {
			break
		}
		t++
		var resp struct {
			Pairs []server.WirePair `json:"pairs"`
		}
		if err := m.call(ctx, http.MethodPost, "/v1/step",
			map[string]map[string][]server.WireOp{"changes": changes}, &resp); err != nil {
			log.Fatalf("t=%d: %v", t, err)
		}
		pairs := make([]core.Pair, 0, len(resp.Pairs))
		for _, p := range resp.Pairs {
			pairs = append(pairs, core.Pair{Stream: core.StreamID(p.Stream), Query: core.QueryID(p.Query)})
		}
		if cur := fmt.Sprint(pairs); cur != prev && !quiet {
			fmt.Printf("t=%d: %v\n", t, pairs)
			prev = cur
		}
	}

	var st struct {
		Timestamps     int     `json:"timestamps"`
		AvgFilterMs    float64 `json:"avg_filter_ms"`
		CandidateRatio float64 `json:"candidate_ratio"`
	}
	if err := m.call(ctx, http.MethodGet, "/v1/stats", nil, &st); err != nil {
		log.Fatalf("fetching stats: %v", err)
	}
	fmt.Printf("done: %d timestamps, avg filter time %.3fms, candidate ratio %.2f%%\n",
		st.Timestamps, st.AvgFilterMs, 100*st.CandidateRatio)
}

func wireOps(cs graph.ChangeSet) []server.WireOp {
	out := make([]server.WireOp, 0, len(cs))
	for _, op := range cs {
		if op.Kind == graph.OpInsert {
			out = append(out, server.WireOp{Op: "ins", U: int32(op.U), V: int32(op.V),
				ULabel: uint16(op.ULabel), VLabel: uint16(op.VLabel), ELabel: uint16(op.EdgeLabel)})
		} else {
			out = append(out, server.WireOp{Op: "del", U: int32(op.U), V: int32(op.V)})
		}
	}
	return out
}

func confirm(mon *core.Monitor, pairs []core.Pair) []core.Pair {
	exact := make(map[core.Pair]bool)
	for _, p := range mon.ExactPairs() {
		exact[p] = true
	}
	var out []core.Pair
	for _, p := range pairs {
		if exact[p] {
			out = append(out, p)
		}
	}
	return out
}

func makeFilter(name string, depth int) (core.Filter, error) {
	switch name {
	case "dsc":
		return join.NewDSC(depth), nil
	case "skyline":
		return join.NewSkyline(depth), nil
	case "nl":
		return join.NewNL(depth), nil
	case "branch":
		return join.NewBranch(depth), nil
	case "graphgrep":
		return graphgrep.New(graphgrep.DefaultLength), nil
	case "gindex1":
		return gindex.New(gindex.Setting1()), nil
	case "gindex2":
		return gindex.New(gindex.Setting2()), nil
	case "exact":
		return join.NewExact(), nil
	default:
		return nil, fmt.Errorf("unknown filter %q", name)
	}
}
