// Command streamwatch runs continuous subgraph pattern search over recorded
// graph streams: it loads a query database and one or more stream files,
// drives the selected filter timestamp by timestamp, and prints the
// possibly-joinable (stream, query) pairs whenever they change.
//
// Usage:
//
//	streamwatch -queries patterns.g [-filter dsc|skyline|nl|branch|graphgrep|gindex1|gindex2|exact]
//	            [-depth 3] [-verify] stream1.gs [stream2.gs ...]
//
// File formats are the line-oriented formats of internal/graph: query
// databases use gSpan-style "t/v/e" sections, streams add "ts" sections
// with "+ u v ulab vlab elab" and "- u v" change lines (see cmd/datagen to
// generate both).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nntstream/internal/core"
	"nntstream/internal/gindex"
	"nntstream/internal/graph"
	"nntstream/internal/graphgrep"
	"nntstream/internal/join"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("streamwatch: ")
	queriesPath := flag.String("queries", "", "query pattern database file (required)")
	filterName := flag.String("filter", "dsc", "filter: dsc, skyline, nl, branch, graphgrep, gindex1, gindex2, exact")
	depth := flag.Int("depth", join.DefaultDepth, "NNT depth bound for the NPV filters")
	verify := flag.Bool("verify", false, "confirm reported pairs with exact isomorphism")
	quiet := flag.Bool("quiet", false, "only print the summary")
	flag.Parse()

	if *queriesPath == "" || flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	f, err := makeFilter(*filterName, *depth)
	if err != nil {
		log.Fatal(err)
	}
	mon := core.NewMonitor(f)

	qf, err := os.Open(*queriesPath)
	if err != nil {
		log.Fatal(err)
	}
	queries, err := graph.ReadDatabase(qf)
	qf.Close()
	if err != nil {
		log.Fatalf("reading queries: %v", err)
	}
	for _, q := range queries {
		if _, err := mon.AddQuery(q); err != nil {
			log.Fatal(err)
		}
	}

	var cursors []*graph.Cursor
	var ids []core.StreamID
	for _, path := range flag.Args() {
		sf, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		s, err := graph.ReadStream(sf)
		sf.Close()
		if err != nil {
			log.Fatalf("reading stream %s: %v", path, err)
		}
		id, err := mon.AddStream(s.Start)
		if err != nil {
			log.Fatal(err)
		}
		cursors = append(cursors, graph.NewCursor(s))
		ids = append(ids, id)
	}
	fmt.Printf("watching %d streams for %d patterns with %s\n",
		len(ids), len(queries), mon.Filter().Name())

	prev := ""
	t := 0
	for {
		changes := make(map[core.StreamID]graph.ChangeSet)
		advanced := false
		for i, c := range cursors {
			cs, ok := c.Next()
			if !ok {
				continue
			}
			advanced = true
			if len(cs) > 0 {
				changes[ids[i]] = cs
			}
		}
		if !advanced {
			break
		}
		t++
		pairs, err := mon.StepAll(changes)
		if err != nil {
			log.Fatal(err)
		}
		if *verify {
			pairs = confirm(mon, pairs)
		}
		if cur := fmt.Sprint(pairs); cur != prev && !*quiet {
			fmt.Printf("t=%d: %v\n", t, pairs)
			prev = cur
		}
	}

	st := mon.Stats()
	fmt.Printf("done: %d timestamps, avg filter time %v, candidate ratio %.2f%%\n",
		st.Timestamps, st.AvgTimePerTimestamp(), 100*st.CandidateRatio())
}

func confirm(mon *core.Monitor, pairs []core.Pair) []core.Pair {
	exact := make(map[core.Pair]bool)
	for _, p := range mon.ExactPairs() {
		exact[p] = true
	}
	var out []core.Pair
	for _, p := range pairs {
		if exact[p] {
			out = append(out, p)
		}
	}
	return out
}

func makeFilter(name string, depth int) (core.Filter, error) {
	switch name {
	case "dsc":
		return join.NewDSC(depth), nil
	case "skyline":
		return join.NewSkyline(depth), nil
	case "nl":
		return join.NewNL(depth), nil
	case "branch":
		return join.NewBranch(depth), nil
	case "graphgrep":
		return graphgrep.New(graphgrep.DefaultLength), nil
	case "gindex1":
		return gindex.New(gindex.Setting1()), nil
	case "gindex2":
		return gindex.New(gindex.Setting2()), nil
	case "exact":
		return join.NewExact(), nil
	default:
		return nil, fmt.Errorf("unknown filter %q", name)
	}
}
