// benchjson mode: running the test binary with -benchjson out.json skips
// the normal test run and instead executes the figure-benchmark registry
// through testing.Benchmark, writing an internal/benchfmt Report. CI uses
// this to record BENCH_<rev>.json trajectories that cmd/benchgate diffs:
//
//	go test -run - -benchjson BENCH_pr.json -benchjson-rev "$(git rev-parse --short HEAD)" \
//	        -bench 'Fig|Parallel' -benchtime 100ms .
//
// The standard -bench regexp and -benchtime flags are honored (testing.Benchmark
// reads -test.benchtime itself; the regexp is applied to registry names).
package nntstream

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"testing"

	"nntstream/internal/benchfmt"
)

var (
	benchJSONOut = flag.String("benchjson", "", "write benchmark results as JSON to this file instead of running tests")
	benchJSONRev = flag.String("benchjson-rev", "", "revision label recorded in the -benchjson report")
)

type benchEntry struct {
	name string
	fn   func(*testing.B)
}

// benchRegistry lists every figure benchmark as a leaf entry. Sub-benchmark
// groups (Fig12's depth sweep) are flattened here because testing.Benchmark
// discards b.Run children; the names intentionally mirror the go test
// -bench spelling so trajectories stay comparable with ad-hoc runs.
func benchRegistry() []benchEntry {
	return []benchEntry{
		{"Fig02_GraphGrep", BenchmarkFig02_GraphGrep},
		{"Fig02_GIndex2", BenchmarkFig02_GIndex2},
		{"Fig02_NPVDSC", BenchmarkFig02_NPVDSC},
		{"Fig12_Depth/L1", func(b *testing.B) { benchFig12Depth(b, 1) }},
		{"Fig12_Depth/L2", func(b *testing.B) { benchFig12Depth(b, 2) }},
		{"Fig12_Depth/L3", func(b *testing.B) { benchFig12Depth(b, 3) }},
		{"Fig12_Depth/L4", func(b *testing.B) { benchFig12Depth(b, 4) }},
		{"Fig13_NPVQuery", BenchmarkFig13_NPVQuery},
		{"Fig13_GIndex1Query", BenchmarkFig13_GIndex1Query},
		{"Fig13_GIndex1Mining", BenchmarkFig13_GIndex1Mining},
		{"Fig13_GraphGrepQuery", BenchmarkFig13_GraphGrepQuery},
		{"Fig1415_Real_GraphGrep", BenchmarkFig1415_Real_GraphGrep},
		{"Fig1415_Real_GIndex1", BenchmarkFig1415_Real_GIndex1},
		{"Fig1415_Real_GIndex2", BenchmarkFig1415_Real_GIndex2},
		{"Fig1415_Real_NPVDSC", BenchmarkFig1415_Real_NPVDSC},
		{"Fig1415_SynSparse_GraphGrep", BenchmarkFig1415_SynSparse_GraphGrep},
		{"Fig1415_SynSparse_GIndex1", BenchmarkFig1415_SynSparse_GIndex1},
		{"Fig1415_SynSparse_GIndex2", BenchmarkFig1415_SynSparse_GIndex2},
		{"Fig1415_SynSparse_NPVDSC", BenchmarkFig1415_SynSparse_NPVDSC},
		{"Fig1415_SynDense_GraphGrep", BenchmarkFig1415_SynDense_GraphGrep},
		{"Fig1415_SynDense_GIndex2", BenchmarkFig1415_SynDense_GIndex2},
		{"Fig1415_SynDense_NPVDSC", BenchmarkFig1415_SynDense_NPVDSC},
		{"Fig16_NL", BenchmarkFig16_NL},
		{"Fig16_DSC", BenchmarkFig16_DSC},
		{"Fig16_Skyline", BenchmarkFig16_Skyline},
		{"Fig17_NL", BenchmarkFig17_NL},
		{"Fig17_DSC", BenchmarkFig17_DSC},
		{"Fig17_Skyline", BenchmarkFig17_Skyline},
		{"Parallel_NL_W1", BenchmarkParallel_NL_W1},
		{"Parallel_NL_W4", BenchmarkParallel_NL_W4},
		{"Parallel_DSC_W1", BenchmarkParallel_DSC_W1},
		{"Parallel_DSC_W4", BenchmarkParallel_DSC_W4},
		{"Parallel_Skyline_W1", BenchmarkParallel_Skyline_W1},
		{"Parallel_Skyline_W4", BenchmarkParallel_Skyline_W4},
		{"QSweep_NL/Q16", func(b *testing.B) { benchQSweep(b, "NL", 16) }},
		{"QSweep_NL/Q160", func(b *testing.B) { benchQSweep(b, "NL", 160) }},
		{"QSweep_NL/Q1600", func(b *testing.B) { benchQSweep(b, "NL", 1600) }},
		{"QSweep_NLScan/Q16", func(b *testing.B) { benchQSweep(b, "NLScan", 16) }},
		{"QSweep_NLScan/Q160", func(b *testing.B) { benchQSweep(b, "NLScan", 160) }},
		{"QSweep_NLScan/Q1600", func(b *testing.B) { benchQSweep(b, "NLScan", 1600) }},
		{"QSweep_Skyline/Q16", func(b *testing.B) { benchQSweep(b, "Skyline", 16) }},
		{"QSweep_Skyline/Q160", func(b *testing.B) { benchQSweep(b, "Skyline", 160) }},
		{"QSweep_Skyline/Q1600", func(b *testing.B) { benchQSweep(b, "Skyline", 1600) }},
		{"QSweep_SkylineScan/Q16", func(b *testing.B) { benchQSweep(b, "SkylineScan", 16) }},
		{"QSweep_SkylineScan/Q160", func(b *testing.B) { benchQSweep(b, "SkylineScan", 160) }},
		{"QSweep_SkylineScan/Q1600", func(b *testing.B) { benchQSweep(b, "SkylineScan", 1600) }},
		{"QSweep_DSC/Q16", func(b *testing.B) { benchQSweep(b, "DSC", 16) }},
		{"QSweep_DSC/Q160", func(b *testing.B) { benchQSweep(b, "DSC", 160) }},
		{"QSweep_DSC/Q1600", func(b *testing.B) { benchQSweep(b, "DSC", 1600) }},
		{"QSweepOverlap_NL/Ov00", func(b *testing.B) { benchQSweepOverlap(b, "NL", "Ov00") }},
		{"QSweepOverlap_NL/Ov50", func(b *testing.B) { benchQSweepOverlap(b, "NL", "Ov50") }},
		{"QSweepOverlap_NL/Ov90", func(b *testing.B) { benchQSweepOverlap(b, "NL", "Ov90") }},
		{"QSweepOverlap_NLNoFactor/Ov00", func(b *testing.B) { benchQSweepOverlap(b, "NLNoFactor", "Ov00") }},
		{"QSweepOverlap_NLNoFactor/Ov50", func(b *testing.B) { benchQSweepOverlap(b, "NLNoFactor", "Ov50") }},
		{"QSweepOverlap_NLNoFactor/Ov90", func(b *testing.B) { benchQSweepOverlap(b, "NLNoFactor", "Ov90") }},
		{"QSweepOverlap_Skyline/Ov00", func(b *testing.B) { benchQSweepOverlap(b, "Skyline", "Ov00") }},
		{"QSweepOverlap_Skyline/Ov50", func(b *testing.B) { benchQSweepOverlap(b, "Skyline", "Ov50") }},
		{"QSweepOverlap_Skyline/Ov90", func(b *testing.B) { benchQSweepOverlap(b, "Skyline", "Ov90") }},
		{"QSweepOverlap_SkylineNoFactor/Ov00", func(b *testing.B) { benchQSweepOverlap(b, "SkylineNoFactor", "Ov00") }},
		{"QSweepOverlap_SkylineNoFactor/Ov50", func(b *testing.B) { benchQSweepOverlap(b, "SkylineNoFactor", "Ov50") }},
		{"QSweepOverlap_SkylineNoFactor/Ov90", func(b *testing.B) { benchQSweepOverlap(b, "SkylineNoFactor", "Ov90") }},
		{"QSweepOverlap_DSC/Ov00", func(b *testing.B) { benchQSweepOverlap(b, "DSC", "Ov00") }},
		{"QSweepOverlap_DSC/Ov50", func(b *testing.B) { benchQSweepOverlap(b, "DSC", "Ov50") }},
		{"QSweepOverlap_DSC/Ov90", func(b *testing.B) { benchQSweepOverlap(b, "DSC", "Ov90") }},
		{"QSweepOverlap_DSCNoFactor/Ov00", func(b *testing.B) { benchQSweepOverlap(b, "DSCNoFactor", "Ov00") }},
		{"QSweepOverlap_DSCNoFactor/Ov50", func(b *testing.B) { benchQSweepOverlap(b, "DSCNoFactor", "Ov50") }},
		{"QSweepOverlap_DSCNoFactor/Ov90", func(b *testing.B) { benchQSweepOverlap(b, "DSCNoFactor", "Ov90") }},
		{"Ablation_Branch", BenchmarkAblation_Branch},
		{"Ablation_Exact", BenchmarkAblation_Exact},
		{"IngestDecode", BenchmarkIngestDecode},
		{"NPV_Dominates_Map", Benchmark_NPV_Dominates_Map},
		{"NPV_Dominates_Packed", Benchmark_NPV_Dominates_Packed},
		{"Factor_ShortCircuit", Benchmark_Factor_ShortCircuit},
		{"NNTMaintenance", BenchmarkNNTMaintenance},
		{"VF2HardInstance", BenchmarkVF2HardInstance},
	}
}

func TestMain(m *testing.M) {
	flag.Parse()
	if *benchJSONOut == "" {
		os.Exit(m.Run())
	}
	os.Exit(runBenchJSON())
}

func runBenchJSON() int {
	pattern := ""
	if f := flag.Lookup("test.bench"); f != nil {
		pattern = f.Value.String()
	}
	if pattern == "" {
		pattern = "." // default: everything, matching go test's -bench .
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: bad -bench regexp %q: %v\n", pattern, err)
		return 2
	}
	benchtime := ""
	if f := flag.Lookup("test.benchtime"); f != nil {
		benchtime = f.Value.String()
	}
	report := collectBenchJSON(benchRegistry(), re, benchtime)
	out, err := os.Create(*benchJSONOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	if err := report.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		out.Close()
		return 2
	}
	if err := out.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(report.Results), *benchJSONOut)
	return 0
}

// collectBenchJSON runs every registry entry matching re and converts the
// testing results into a benchfmt report. Split from runBenchJSON so tests
// can drive it with a synthetic registry.
func collectBenchJSON(entries []benchEntry, re *regexp.Regexp, benchtime string) *benchfmt.Report {
	report := &benchfmt.Report{
		Revision:   *benchJSONRev,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Benchtime:  benchtime,
	}
	for _, e := range entries {
		if !re.MatchString(e.name) {
			continue
		}
		res := testing.Benchmark(e.fn)
		ns := float64(res.T.Nanoseconds()) / float64(res.N)
		if ns <= 0 {
			ns = 0.01 // sub-resolution benches still need a positive cost
		}
		report.Add(benchfmt.Result{
			Name:        e.name,
			Iterations:  res.N,
			NsPerOp:     ns,
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "benchjson: %s\t%d iters\t%.0f ns/op\t%d allocs/op\n",
			e.name, res.N, ns, res.AllocsPerOp())
	}
	return report
}
